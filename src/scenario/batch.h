// Parallel batch-execution layer (the harness side of the thread pool).
//
// A BatchRunner fans independent measured runs across a fixed-size worker
// pool. Each run owns a private World (Engine, Rng, components) so the
// simulation itself stays single-threaded; only whole runs are scheduled.
// Results and observability output are merged in index order, so batch
// output is bit-identical regardless of --jobs.
//
// Observability sharding: map_runs gives every run a private Observability
// (tracing into a memory buffer when the session traces). After the batch
// completes, run metrics are merged into the session registry and trace
// buffers are spliced into the session sink, both in run-index order —
// deterministic merge, concurrent collection.
//
// TrainedWorldCache memoizes fully trained Worlds per configuration
// fingerprint so a batch trains once per (scenario, seed) and clones the
// template for each measured alternative (World::clone).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/obs.h"
#include "scenario/world.h"

namespace spectra::scenario {

// Default for Config.reuse_trained_world: true unless SPECTRA_REUSE is set
// to 0/off/false (the bench harness uses that to measure the retrain-per-run
// baseline).
bool default_reuse_trained_world();

// Turn a jobs request into a worker count: 0 means "one per hardware
// thread"; anything else is clamped to at least 1.
std::size_t resolve_jobs(long requested);

class BatchRunner {
 public:
  // jobs <= 1 runs everything inline on the calling thread (the sequential
  // reference path); jobs > 1 spins up that many workers.
  explicit BatchRunner(std::size_t jobs);

  std::size_t jobs() const { return jobs_; }
  // Null when sequential.
  exec::ThreadPool* pool() { return pool_.get(); }

  // Run fn(i) for i in [0, n); returns results in index order. T must be
  // default-constructible. May be called from inside another batch task on
  // the same runner (nested fan-out).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> out(n);
    exec::parallel_for(pool_.get(), n,
                       [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // Like map, but fn(i, run_obs) receives a private Observability per run
  // (null when `session` is null). Once every run has finished, run metrics
  // merge into `session` and run trace buffers splice into the session
  // trace, both in index order.
  template <typename Fn>
  auto map_runs(obs::Observability* session, std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{},
                                 static_cast<obs::Observability*>(nullptr)))> {
    using Result = decltype(fn(std::size_t{},
                               static_cast<obs::Observability*>(nullptr)));
    struct Shard {
      obs::Observability obs;
      std::ostringstream trace;
    };
    std::vector<std::unique_ptr<Shard>> shards;
    if (session != nullptr) {
      shards.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        shards.push_back(std::make_unique<Shard>());
        if (session->tracing()) shards.back()->obs.trace_to(shards.back()->trace);
      }
    }
    std::vector<Result> out(n);
    exec::parallel_for(pool_.get(), n, [&](std::size_t i) {
      out[i] = fn(i, session != nullptr ? &shards[i]->obs : nullptr);
    });
    if (session != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        session->metrics().merge(shards[i]->obs.metrics());
        if (session->tracing()) {
          session->trace()->write_raw(shards[i]->trace.str());
        }
      }
    }
    return out;
  }

 private:
  std::size_t jobs_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

// Process-wide cache of trained Worlds, keyed by an experiment-provided
// fingerprint (application, scenario, seed, training shape). The first
// caller for a key builds the world; concurrent callers for the same key
// block in call_once until it is ready. Cached worlds are quiescent,
// observability-free templates — callers clone, never mutate.
class TrainedWorldCache {
 public:
  static TrainedWorldCache& instance();

  std::shared_ptr<const World> get(
      const std::string& key,
      const std::function<std::unique_ptr<World>()>& build);

  // Drop every cached world (tests and between-figure hygiene).
  void clear();
  std::size_t size() const;

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const World> world;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace spectra::scenario
