#include "scenario/world.h"

#include "util/assert.h"

namespace spectra::scenario {

namespace {

constexpr const char* kProbePath = "probe/netprobe";
constexpr double kProbeSize = 24.0 * 1024;

hw::MachineSpec itsy_spec() {
  hw::MachineSpec s;
  s.name = "itsy";
  s.cpu_hz = 206e6;
  s.fp_penalty = 3.0;  // software-emulated floating point (SA-1100)
  s.power = hw::PowerModel{0.15, 1.55, 0.35};
  s.battery_capacity_j = 20000.0;  // ~5.5 Wh
  return s;
}

hw::MachineSpec t20_spec() {
  hw::MachineSpec s;
  s.name = "t20";
  s.cpu_hz = 700e6;
  s.power = hw::PowerModel{7.0, 8.0, 2.0};
  return s;
}

hw::MachineSpec thinkpad560x_spec() {
  hw::MachineSpec s;
  s.name = "560x";
  s.cpu_hz = 233e6;
  s.power = hw::PowerModel{7.0, 6.0, 2.0};
  s.battery_capacity_j = 110000.0;
  return s;
}

hw::MachineSpec server_a_spec() {
  hw::MachineSpec s;
  s.name = "serverA";
  s.cpu_hz = 400e6;
  s.power = hw::PowerModel{20.0, 10.0, 2.0};
  return s;
}

hw::MachineSpec server_b_spec() {
  hw::MachineSpec s;
  s.name = "serverB";
  s.cpu_hz = 933e6;
  s.power = hw::PowerModel{25.0, 15.0, 2.0};
  return s;
}

hw::MachineSpec file_server_spec() {
  hw::MachineSpec s;
  s.name = "fileserver";
  s.cpu_hz = 800e6;
  s.power = hw::PowerModel{30.0, 10.0, 2.0};
  return s;
}

}  // namespace

World::World(WorldConfig config) : World(std::move(config), true) {}

World::World(WorldConfig config, SkipFilePopulation)
    : World(std::move(config), false) {}

World::World(WorldConfig config, bool populate_files)
    : populate_files_(populate_files),
      config_(config),
      rng_(config.seed ^ 0x5a5a5a5aULL) {
  network_ = std::make_unique<net::Network>(engine_, rng_.fork());
  file_server_ = std::make_unique<fs::FileServer>(kFileServer);
  switch (config_.testbed) {
    case Testbed::kItsy:
      build_itsy();
      break;
    case Testbed::kThinkpad:
      build_thinkpad();
      break;
    case Testbed::kOverhead:
      build_overhead();
      break;
  }
  create_background_files();

  // Wire the fault injector to everything a plan may target: all remote
  // server endpoints (crash/restart) and all machines (battery cliffs).
  fault_injector_ = std::make_unique<fault::FaultInjector>(engine_, *network_);
  for (auto& [id, server] : servers_) {
    fault_injector_->attach_endpoint(id, server->endpoint());
  }
  for (auto& [id, machine] : machines_) {
    fault_injector_->attach_machine(id, *machine);
  }
  fault_injector_->attach_obs(config_.spectra.obs);
}

World::~World() = default;

void World::add_machine(MachineId id, hw::MachineSpec spec) {
  auto m = std::make_unique<hw::Machine>(engine_, std::move(spec),
                                         rng_.fork());
  network_->add_machine(id, m.get());
  machines_.emplace(id, std::move(m));
}

void World::add_coda(MachineId id, fs::CodaClientConfig cfg) {
  codas_.emplace(id, std::make_unique<fs::CodaClient>(
                         id, *machines_.at(id), *network_, *file_server_,
                         cfg));
}

void World::build_itsy() {
  add_machine(kClient, itsy_spec());
  add_machine(kServerT20, t20_spec());
  add_machine(kFileServer, file_server_spec());

  // Serial link client<->server; the file servers sit on a separate
  // (equally modest) path, reachable even when the compute server is not.
  network_->set_link(kClient, kServerT20, {11500.0, 0.010});
  network_->set_link(kClient, kFileServer, {30000.0, 0.020});
  network_->set_link(kServerT20, kFileServer, {1.0e6, 0.002});

  fs::CodaClientConfig client_coda;
  client_coda.cache_capacity = 16.0 * 1024 * 1024;
  add_coda(kClient, client_coda);
  fs::CodaClientConfig server_coda;
  add_coda(kServerT20, server_coda);

  auto driver = std::make_unique<hw::SmartBatteryDriver>(
      engine_, machines_.at(kClient)->meter(), /*quantum=*/0.2);
  spectra_ = std::make_unique<core::SpectraClient>(
      kClient, engine_, *machines_.at(kClient), *network_,
      *codas_.at(kClient), std::move(driver), rng_.fork(), config_.spectra);

  servers_.emplace(kServerT20, std::make_unique<core::SpectraServer>(
                                   kServerT20, engine_,
                                   *machines_.at(kServerT20), *network_,
                                   codas_.at(kServerT20).get()));

  janus_ = std::make_unique<apps::JanusApp>();
  if (populate_files_) {
    janus_->install_files(*file_server_);
    file_server_->create({kProbePath, kProbeSize, "probe"});
  }
  janus_->install_services(spectra_->local_server(), rng_.fork());
  janus_->install_services(*servers_.at(kServerT20), rng_.fork());
  janus_->register_op(*spectra_);

  spectra_->add_server(*servers_.at(kServerT20));
}

void World::build_thinkpad() {
  add_machine(kClient, thinkpad560x_spec());
  add_machine(kServerA, server_a_spec());
  add_machine(kServerB, server_b_spec());
  add_machine(kFileServer, file_server_spec());

  // Shared 2 Mb/s wireless to the compute servers; the Coda SFTP path to
  // the file servers achieves far lower goodput (calibrated so that
  // reintegrating a 70 KB modification costs seconds, as in the paper).
  network_->set_link(kClient, kServerA, {250000.0, 0.005});
  network_->set_link(kClient, kServerB, {250000.0, 0.005});
  network_->set_link(kClient, kFileServer, {30000.0, 0.010});
  network_->set_link(kServerA, kServerB, {1.25e6, 0.001});
  network_->set_link(kServerA, kFileServer, {300000.0, 0.002});
  network_->set_link(kServerB, kFileServer, {300000.0, 0.002});

  fs::CodaClientConfig client_coda;
  client_coda.cache_capacity = 64.0 * 1024 * 1024;
  add_coda(kClient, client_coda);
  fs::CodaClientConfig server_coda;
  server_coda.cache_capacity = 128.0 * 1024 * 1024;
  server_coda.per_file_overhead = 0.1;  // RPC2 fetch setup + callback
  add_coda(kServerA, server_coda);
  add_coda(kServerB, server_coda);

  // The 560X has no power instrumentation; the paper measured it with an
  // external multimeter.
  auto driver = std::make_unique<hw::MultimeterDriver>(
      machines_.at(kClient)->meter());
  spectra_ = std::make_unique<core::SpectraClient>(
      kClient, engine_, *machines_.at(kClient), *network_,
      *codas_.at(kClient), std::move(driver), rng_.fork(), config_.spectra);

  for (MachineId id : {kServerA, kServerB}) {
    servers_.emplace(id, std::make_unique<core::SpectraServer>(
                             id, engine_, *machines_.at(id), *network_,
                             codas_.at(id).get()));
  }

  latex_ = std::make_unique<apps::LatexApp>();
  pangloss_ = std::make_unique<apps::PanglossApp>();
  if (populate_files_) {
    latex_->install_files(*file_server_);
    pangloss_->install_files(*file_server_);
    file_server_->create({kProbePath, kProbeSize, "probe"});
  }
  for (auto& [id, server] : servers_) {
    (void)id;
    latex_->install_services(*server, rng_.fork());
    pangloss_->install_services(*server, rng_.fork());
  }
  latex_->install_services(spectra_->local_server(), rng_.fork());
  pangloss_->install_services(spectra_->local_server(), rng_.fork());
  latex_->register_op(*spectra_);
  pangloss_->register_op(*spectra_);

  for (auto& [id, server] : servers_) {
    (void)id;
    spectra_->add_server(*server);
  }
}

void World::build_overhead() {
  add_machine(kClient, thinkpad560x_spec());
  add_machine(kFileServer, file_server_spec());
  network_->set_link(kClient, kFileServer, {250000.0, 0.005});

  fs::CodaClientConfig client_coda;
  client_coda.cache_capacity = 256.0 * 1024 * 1024;
  add_coda(kClient, client_coda);
  if (populate_files_) {
    file_server_->create({kProbePath, kProbeSize, "probe"});
  }

  auto driver = std::make_unique<hw::MultimeterDriver>(
      machines_.at(kClient)->meter());
  spectra_ = std::make_unique<core::SpectraClient>(
      kClient, engine_, *machines_.at(kClient), *network_,
      *codas_.at(kClient), std::move(driver), rng_.fork(), config_.spectra);

  for (std::size_t i = 0; i < config_.overhead_servers; ++i) {
    const MachineId id = static_cast<MachineId>(1 + i);
    add_machine(id, server_b_spec());
    network_->set_link(kClient, id, {250000.0, 0.005});
    network_->set_link(id, kFileServer, {300000.0, 0.002});
    fs::CodaClientConfig server_coda;
    add_coda(id, server_coda);
    servers_.emplace(id, std::make_unique<core::SpectraServer>(
                             id, engine_, *machines_.at(id), *network_,
                             codas_.at(id).get()));
  }
  for (auto& [id, server] : servers_) {
    (void)id;
    spectra_->add_server(*server);
  }
}

void World::create_background_files() {
  if (!populate_files_) return;
  for (std::size_t i = 0; i < config_.background_files; ++i) {
    file_server_->create({"bg/f" + std::to_string(i),
                          rng_.uniform(8.0, 64.0) * 1024, "bg"});
  }
}

hw::Machine& World::machine(MachineId id) {
  auto it = machines_.find(id);
  SPECTRA_REQUIRE(it != machines_.end(), "no such machine in this world");
  return *it->second;
}

fs::CodaClient& World::coda(MachineId id) {
  auto it = codas_.find(id);
  SPECTRA_REQUIRE(it != codas_.end(), "no Coda client on this machine");
  return *it->second;
}

core::SpectraServer& World::server(MachineId id) {
  auto it = servers_.find(id);
  SPECTRA_REQUIRE(it != servers_.end(), "no Spectra server on this machine");
  return *it->second;
}

std::vector<MachineId> World::server_ids() const {
  std::vector<MachineId> out;
  for (const auto& [id, s] : servers_) {
    (void)s;
    out.push_back(id);
  }
  return out;
}

apps::JanusApp& World::janus() {
  SPECTRA_REQUIRE(janus_ != nullptr, "Janus runs on the Itsy testbed");
  return *janus_;
}

apps::LatexApp& World::latex() {
  SPECTRA_REQUIRE(latex_ != nullptr, "Latex runs on the ThinkPad testbed");
  return *latex_;
}

apps::PanglossApp& World::pangloss() {
  SPECTRA_REQUIRE(pangloss_ != nullptr,
                  "Pangloss runs on the ThinkPad testbed");
  return *pangloss_;
}

void World::warm_all_caches() {
  // Application files everywhere.
  std::vector<std::string> app_files;
  if (janus_ != nullptr) {
    app_files.push_back(janus_->config().lm_full_path);
    app_files.push_back(janus_->config().lm_reduced_path);
  }
  if (latex_ != nullptr) {
    for (const auto& d : latex_->config().documents) {
      for (const auto& f : d.files) app_files.push_back(f.path);
    }
  }
  if (pangloss_ != nullptr) {
    for (const auto& c : pangloss_->config().components) {
      app_files.push_back(c.file_path);
    }
  }
  for (auto& [id, coda] : codas_) {
    (void)id;
    for (const auto& path : app_files) coda->warm(path);
  }
  // Background files on the compute servers only.
  for (std::size_t i = 0; i < config_.background_files; ++i) {
    for (const auto& [id, server] : servers_) {
      (void)server;
      codas_.at(id)->warm("bg/f" + std::to_string(i));
    }
  }
}

void World::probe_fetch_rates() {
  for (auto& [id, coda] : codas_) {
    if (id == kFileServer) continue;
    if (coda->is_cached(kProbePath)) coda->evict(kProbePath);
    coda->read(kProbePath);
  }
}

void World::settle(util::Seconds duration) {
  SPECTRA_REQUIRE(duration >= 0.0, "negative settle duration");
  engine_.run_until(engine_.now() + duration);
}

std::unique_ptr<World> World::clone(
    obs::Observability* obs,
    const std::function<void(World&)>& prepare) const {
  WorldConfig cfg = config_;
  cfg.spectra.obs = obs;
  auto w = std::unique_ptr<World>(new World(cfg, SkipFilePopulation{}));
  if (prepare) prepare(*w);
  // Re-arming registers the same fault.N event tags the source holds; the
  // events the clone just scheduled are discarded by adopt_schedule below,
  // which rebinds the source's pending occurrences to the clone's callbacks.
  for (const auto& plan : armed_plans_) w->arm_faults(plan);
  w->rng_ = rng_;
  for (auto& [id, m] : w->machines_) m->copy_state_from(*machines_.at(id));
  w->network_->copy_state_from(*network_);
  w->file_server_->copy_state_from(*file_server_);
  for (auto& [id, c] : w->codas_) c->copy_state_from(*codas_.at(id));
  for (auto& [id, s] : w->servers_) s->copy_state_from(*servers_.at(id));
  w->spectra_->copy_state_from(*spectra_);
  w->fault_injector_->copy_state_from(*fault_injector_);
  if (janus_ != nullptr) w->janus_->copy_state_from(*janus_);
  if (latex_ != nullptr) w->latex_->copy_state_from(*latex_);
  if (pangloss_ != nullptr) w->pangloss_->copy_state_from(*pangloss_);
  // Last, so every component has already registered its tagged events.
  w->engine_.adopt_schedule(engine_);
  return w;
}

}  // namespace spectra::scenario
