// Fleet-scale worlds: N Spectra clients against a shared server pool.
//
// The paper's testbeds are one client and a couple of servers; the fleet
// layer scales the world model to thousands of concurrent clients whose
// remote-execution decisions contend for the same pool. Three pieces:
//
//   * FleetScenario — a seeded generator that turns a FleetConfig into a
//     heterogeneous device mix (Itsy-class handhelds, ThinkPad-class
//     laptops, modern wall-powered boxes), per-client arrival schedules
//     (thinned-Poisson processes modulated by a diurnal wave and seeded
//     flash crowds), and a pool of shared servers. Everything is a pure
//     function of the seed.
//
//   * FleetWorld — a tick-based simulator over that scenario, sharded into
//     islands (scenario::plan_islands) that advance independently on
//     sim::IslandExecutor / exec::ThreadPool workers and synchronize at a
//     conservative lookahead horizon. Each island tick: the island's slice
//     of the fault stream applies, its servers serve their admission queues
//     (core::AdmissionQueue — bounded run queue, FIFO or weighted-fair),
//     completions are credited back, every island client with due arrivals
//     runs its decision pipeline against the last tick's published views of
//     its own servers (monitor::LoadBoard) plus barrier-frozen views of
//     remote islands' servers, and accepted island-local decisions are
//     submitted in deterministic (arrival time, client) order. Cross-island
//     effects — submissions to remote servers, completions/crash aborts of
//     remote clients' jobs — ride outboxes that the sequential barrier
//     exchange delivers in island index order. Server load observed by
//     clients is therefore genuine multi-tenant contention, not a scripted
//     background factor.
//
//   * FleetReport — fleet-level metrics: p50/p99 end-to-end operation
//     latency (virtual, deterministic), wall-clock decision latency
//     percentiles (real, metrics-only), server utilization, aggregate
//     energy, and Jain's fairness index across clients.
//
// Determinism: the island partition and lookahead are pure functions of the
// scenario (never of --jobs), decisions are pure functions of (client
// state, frozen views), per-island and per-client observability shards
// merge into the session in fixed index order, and every cross-island
// interaction happens in the sequential barrier with a fixed order — so
// traces, metrics, and reports are byte-identical for any --jobs, and a
// cloned world replays bit-identically. With a single island the pipeline
// reduces exactly (byte for byte) to the sequential tick pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "exec/thread_pool.h"
#include "fault/fault_plan.h"
#include "hw/power.h"
#include "monitor/load_board.h"
#include "obs/obs.h"
#include "scenario/islands.h"
#include "sim/island_exec.h"
#include "util/arena.h"
#include "util/interner.h"
#include "util/stats.h"
#include "util/units.h"

namespace spectra::scenario {

// ----------------------------------------------------------------- scenario

enum class DeviceClass { kItsy, kThinkpad, kModern };

const char* to_string(DeviceClass device);

// Operation shape the generator draws: kMixed is the interactive blend the
// fleet ladder has always used; kSpeech draws Janus-recognition-shaped ops
// (heavier, FP-dominated, larger uploads) so a figure-scale workload can be
// run at fleet scale.
enum class FleetWorkload { kMixed, kSpeech };

const char* to_string(FleetWorkload workload);

struct FleetClientProfile {
  DeviceClass device = DeviceClass::kThinkpad;
  util::Symbol name;  // interned, e.g. "itsy-0042"
  util::Hertz cpu_hz = 0.0;
  double fp_penalty = 1.0;
  hw::PowerModel power;
  // Admission weight under the weighted-fair policy.
  double weight = 1.0;
  bool on_battery = false;
  // Energy-conservation importance c in the decision's utility product.
  double energy_importance = 0.0;
  // Per-client arrival-rate multiplier (some users are chattier).
  double rate_scale = 1.0;
};

// One operation arrival: the client must run `cycles` of work, shipping
// `bytes` over the shared medium if it executes remotely.
struct FleetOp {
  util::Seconds at = 0.0;
  util::Cycles cycles = 0.0;
  util::Bytes bytes = 0.0;
  bool fp_heavy = false;
};

struct FleetServerSpec {
  util::Symbol name;
  util::Hertz cpu_hz = 0.0;
  hw::PowerModel power;
};

struct FleetConfig {
  std::size_t clients = 1000;
  std::size_t servers = 8;
  std::uint64_t seed = 1;
  util::Seconds horizon = 300.0;
  util::Seconds tick = 0.5;
  core::AdmissionConfig admission;

  // Island-parallel execution: number of islands (0 = auto, see
  // auto_island_count) and the conservative lookahead horizon between
  // island barriers (0 = auto, see derive_lookahead). Both are pure
  // functions of the scenario/config — never of --jobs — so any worker
  // count produces byte-identical output.
  std::size_t islands = 0;
  util::Seconds lookahead = 0.0;

  // Operation shape drawn by the generator.
  FleetWorkload workload = FleetWorkload::kMixed;

  // Arrival process: per-client base rate, modulated by a diurnal sine wave
  // and flash crowds (seeded windows where the rate multiplies).
  double ops_per_client_hz = 0.04;
  double diurnal_amplitude = 0.6;       // rate *= 1 + A*sin(2*pi*t/period)
  util::Seconds diurnal_period = 120.0;
  int flash_crowds = 1;
  double flash_multiplier = 6.0;
  util::Seconds flash_duration = 10.0;

  // Device mix fractions (remainder is kModern).
  double itsy_fraction = 0.4;
  double thinkpad_fraction = 0.4;

  // Shared wireless medium (paper-shaped 2 Mb/s) and its base round trip.
  util::BytesPerSec bandwidth = 250e3;
  util::Seconds rtt = 0.02;

  // Optional fault plan: server_crash/server_restart address pool servers
  // by index, latency/bandwidth faults scale the shared medium, link faults
  // partition the medium outright. A battery_cliff addresses client
  // (a mod clients): its charge collapsed, so the radio goes dark and every
  // decision is forced local until the cliff's `duration` elapses (no
  // duration = the rest of the run).
  std::optional<fault::FaultPlan> fault_plan;
};

class FleetScenario {
 public:
  explicit FleetScenario(FleetConfig config);

  const FleetConfig& config() const { return config_; }
  const std::vector<FleetClientProfile>& profiles() const { return profiles_; }
  const std::vector<FleetServerSpec>& servers() const { return servers_; }
  // Client `c`'s arrival schedule, sorted by time. All schedules live in
  // one flat array sliced by offset — at 100k clients the former
  // vector-of-vectors layout cost a heap block and 24-byte header per
  // client and scattered the ops the tick loop walks.
  std::span<const FleetOp> schedule(std::size_t client) const {
    return {schedule_ops_.data() + schedule_off_[client],
            schedule_off_[client + 1] - schedule_off_[client]};
  }
  const std::vector<std::pair<util::Seconds, util::Seconds>>& flash_windows()
      const {
    return flash_windows_;
  }

  // Arrival-rate multiplier at time t (diurnal wave x flash crowds), before
  // the per-client rate scale. Exposed for tests.
  double rate_multiplier(util::Seconds t) const;

  std::size_t total_ops() const;

 private:
  FleetConfig config_;
  std::vector<FleetClientProfile> profiles_;
  std::vector<FleetServerSpec> servers_;
  // Flat arrival storage: client c's ops occupy
  // [schedule_off_[c], schedule_off_[c+1]).
  std::vector<FleetOp> schedule_ops_;
  std::vector<std::uint32_t> schedule_off_;
  std::vector<std::pair<util::Seconds, util::Seconds>> flash_windows_;
};

// ------------------------------------------------------------------- report

struct FleetReport {
  // Shape echo.
  std::size_t clients = 0;
  std::size_t servers = 0;
  core::AdmissionPolicy policy = core::AdmissionPolicy::kFifo;
  util::Seconds horizon = 0.0;
  std::size_t islands = 0;
  util::Seconds lookahead_s = 0.0;

  // Deterministic aggregates (safe for goldens and --jobs identity).
  std::uint64_t decisions = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_local = 0;     // completed locally (chosen or fallback)
  std::uint64_t ops_remote = 0;    // completed on a pool server
  std::uint64_t ops_rejected = 0;  // admission rejections (fell back local)
  std::uint64_t ops_aborted = 0;   // lost to a server crash, rerun locally
  std::uint64_t ops_cross_island = 0;  // submitted to another island's server
  std::uint64_t battery_cliffs = 0;  // cliff events applied to clients
  double latency_p50_s = 0.0;      // end-to-end, virtual time
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double server_utilization_mean = 0.0;
  double server_utilization_min = 0.0;
  double server_utilization_max = 0.0;
  util::Joules aggregate_energy_j = 0.0;
  double jain_fairness = 0.0;  // over per-client mean slowdown, in (0, 1]
  util::Seconds virtual_end = 0.0;
  // FNV-1a over per-client and per-server outcome state; equal fingerprints
  // mean bit-identical fleet execution.
  std::uint64_t fingerprint = 0;

  // Wall-clock measurements (real time; never in goldens or stdout tables).
  double wall_seconds = 0.0;
  double decision_wall_p50_ms = 0.0;
  double decision_wall_p99_ms = 0.0;
  double decisions_per_wall_sec = 0.0;
  // Simulation throughput: (decisions + completions) per wall second — the
  // scaling-curve metric events/sec-vs-cores benches track.
  double events_per_wall_sec = 0.0;

  // Machine-readable form: deterministic fields first, wall-clock fields
  // under a "wall" object so consumers can strip them for identity checks.
  std::string to_json() const;
};

// -------------------------------------------------------------------- world

class FleetWorld {
 public:
  // `session` (nullable) receives merged per-client metrics and traces when
  // the run finishes. Tracing must be enabled before run_until is called.
  FleetWorld(std::shared_ptr<const FleetScenario> scenario,
             obs::Observability* session);

  const FleetScenario& scenario() const { return *scenario_; }
  const IslandPlan& plan() const { return plan_; }
  util::Seconds now() const { return exec_.now(); }
  bool finished() const { return finished_; }

  // Advance every island until virtual time reaches `until` (clamped to
  // the horizon), synchronizing at each lookahead barrier. With multiple
  // islands the islands fan out across `pool`; with one island the per-tick
  // decision stage fans out instead (null pool runs everything inline — the
  // sequential reference path).
  void run_until(util::Seconds until, exec::ThreadPool* pool);

  // Run to the horizon, settle outstanding cross-island mail, merge
  // per-island and per-client shards into the session bundle (in index
  // order), and build the report. Idempotent.
  FleetReport finish(exec::ThreadPool* pool);

  // Deep-copy mid-run state into a fresh world reporting to `obs`. The
  // clone continues bit-identically to this world: same decisions, same
  // admissions, same completions, same trace bytes from the start of the
  // run (per-client shard buffers are carried over).
  std::unique_ptr<FleetWorld> clone(obs::Observability* obs) const;

  // FNV-1a over mutable outcome state; exposed for clone/replay tests.
  std::uint64_t state_fingerprint() const;

 private:
  struct LocalRun {
    util::Seconds finish = 0.0;
    util::Seconds arrived = 0.0;
    util::Joules energy = 0.0;
    util::Seconds ideal = 0.0;  // best unloaded placement time for the op
    bool fallback = false;      // admission rejection or crash rerun
  };

  // A queued local run, linked into its client's FIFO through the owning
  // pool's node store (see PoolStore::run_nodes).
  struct RunNode {
    LocalRun run;
    std::int32_t next = -1;
  };

  // Per-client mutable state, struct-of-arrays: every field is a flat
  // vector indexed by client. The former per-client struct scattered three
  // heap vectors and a trace shard per client — at 100k clients most of the
  // resident set was headers and fragmentation, and the tick loop walked
  // pointers instead of rows. Counters are 32-bit (a client cannot complete
  // more ops than its schedule holds, and fingerprints widen to 64-bit at
  // mix time, so the folded values are unchanged). Workers touch only rows
  // of clients they own.
  struct ClientStore {
    std::vector<std::uint32_t> next_op;  // cursor into the arrival schedule
    std::vector<double> local_free_at;
    // Battery-cliff degradation: decisions for ops arriving before
    // `forced_local_until` skip every remote alternative (radio dark).
    std::vector<double> forced_local_until;
    // Head/tail of the client's local-run FIFO in its pool's node store
    // (-1 = empty).
    std::vector<std::int32_t> run_head;
    std::vector<std::int32_t> run_tail;
    // Outcome accounting (drives the report and the fingerprint).
    std::vector<std::uint32_t> decisions;
    std::vector<std::uint32_t> completed;
    std::vector<std::uint32_t> completed_local;
    std::vector<std::uint32_t> completed_remote;
    std::vector<std::uint32_t> rejected;
    std::vector<std::uint32_t> aborted;
    std::vector<std::uint32_t> battery_cliffs;
    std::vector<double> latency_sum_s;
    std::vector<double> slowdown_sum;  // ideal/actual per completed op
    std::vector<double> energy_j;

    void resize(std::size_t n);
  };

  // One completed-op latency sample. Samples accumulate per pool in credit
  // order and are re-sorted by client at finish(), which reproduces the
  // exact per-client-then-chronological stream the per-client vectors used
  // to yield (each client lives in exactly one pool, and a stable sort by
  // client preserves its chronological pool order).
  struct LatSample {
    std::uint32_t client = 0;
    double latency_s = 0.0;
  };

  struct Decision;

  // Per-pool append buffers and the local-run node store. A "pool" is the
  // unit of parallel execution in the decision stage: one per island when
  // islands shard the world, one per kClientChunk-clients chunk in the
  // single-island chunked stage. Either way a pool is written by exactly
  // one worker at a time, and the pool partition is a pure function of the
  // scenario — never of --jobs. Buffers are reserved up front to their op
  // bound (one entry per scheduled op at most), so steady-state ticks never
  // touch the allocator.
  struct PoolStore {
    std::vector<RunNode> run_nodes;  // arena of queued local runs
    std::int32_t run_free = -1;      // free-list head into run_nodes
    std::vector<Decision> decisions;     // remote picks, drained every tick
    std::vector<LatSample> latencies;    // per completed op, virtual time
    std::vector<double> wall_ms;         // per decision, real; metrics only
    std::size_t op_bound = 0;  // total scheduled ops over member clients

    std::int32_t alloc_run() {
      if (run_free >= 0) {
        const std::int32_t n = run_free;
        run_free = run_nodes[static_cast<std::size_t>(n)].next;
        return n;
      }
      run_nodes.emplace_back();
      return static_cast<std::int32_t>(run_nodes.size() - 1);
    }
    void free_run(std::int32_t n) {
      run_nodes[static_cast<std::size_t>(n)].next = run_free;
      run_free = n;
    }
    void reserve_bound() {
      run_nodes.reserve(op_bound);
      decisions.reserve(op_bound);
      latencies.reserve(op_bound);
      wall_ms.reserve(op_bound);
    }
  };

  struct RemoteMeta {
    std::uint32_t client = 0;
    util::Seconds arrived = 0.0;
    util::Bytes bytes = 0.0;
    util::Seconds net_time = 0.0;  // uplink time already spent
    util::Cycles cycles = 0.0;
    bool fp_heavy = false;
  };

  struct ServerState {
    core::AdmissionQueue queue;
    bool up = true;
    // Job metadata by slot (AdmissionJob::cookie). Slots recycle through
    // `free_meta` as jobs finish, so the table is bounded by concurrent
    // in-flight jobs (queue bound + service slots) instead of growing with
    // every job ever admitted.
    std::vector<RemoteMeta> meta;
    std::vector<std::uint32_t> free_meta;
    util::Seconds busy_last = 0.0;  // busy_time() at the last publish
    ServerState(const core::AdmissionConfig& cfg) : queue(cfg) {}
  };

  // One decision produced by the parallel stage, applied sequentially.
  struct Decision {
    std::uint32_t client = 0;
    FleetOp op;
    int server = -1;  // -1 = local
    double predicted_s = 0.0;
    double net_time_s = 0.0;  // predicted uplink time, charged on admit
  };

  // Cross-island mail, accumulated in per-island outboxes during a step
  // and delivered by the sequential barrier exchange.
  struct CrossSubmission {
    std::uint32_t client = 0;   // origin client (another island)
    std::uint32_t server = 0;   // target server (this mail's destination)
    FleetOp op;
    double net_time_s = 0.0;
  };
  struct CrossCompletion {
    std::uint32_t client = 0;
    util::Seconds arrived = 0.0;
    util::Seconds finished = 0.0;
    util::Joules energy = 0.0;
    util::Seconds ideal = 0.0;
    int server = -1;
  };
  struct CrossAbort {
    std::uint32_t client = 0;
    FleetOp op;
  };

  // Everything one island owns between barriers. Workers touch only their
  // own island (plus the disjoint client/server slices it owns). Tick-
  // lifetime scratch lives on the island's arena instead, so this struct
  // stays copyable for clone().
  struct IslandState {
    explicit IslandState(std::size_t nservers) : board(nservers) {}

    util::Seconds now = 0.0;
    // Published views of this island's own servers (island-local index).
    monitor::LoadBoard board;
    // Replicated medium state: every island applies the same link/latency/
    // bandwidth events from the shared expanded stream via its own cursor,
    // so the factors agree at identical ticks without any sharing.
    bool medium_up = true;
    double rtt_factor = 1.0;
    double bandwidth_factor = 1.0;
    std::size_t next_fault = 0;  // cursor into fault_events_
    // Successful remote submissions per tick since the last barrier fold
    // (position-wise summed across islands into the shared-medium EWMA).
    std::vector<std::size_t> tick_transfers;
    // Fault events this island owns the trace line for.
    obs::TraceShard fault_trace;
    // Outboxes, drained at the next barrier.
    std::vector<CrossSubmission> out_submissions;
    std::vector<CrossCompletion> out_completions;
    std::vector<CrossAbort> out_aborts;
  };

  // ---- island step (parallel; touches only island-owned state) ----------
  void island_advance(std::size_t island, util::Seconds target);
  void island_tick(std::size_t island, util::Seconds t0, util::Seconds t1);
  void apply_island_faults(std::size_t island, util::Seconds t0,
                           util::Seconds t1);
  void serve_island(std::size_t island, util::Seconds t0, util::Seconds t1);
  void island_decisions(std::size_t island, util::Seconds t1);
  void island_submit(std::size_t island);
  void publish_island(std::size_t island, util::Seconds t0,
                      util::Seconds t1);

  // ---- barrier exchange (sequential) ------------------------------------
  void exchange(util::Seconds t);
  void fold_medium();
  void deliver_mail(util::Seconds t);
  // Submit to `server` (must be up) with the old-path bookkeeping; falls
  // back to local execution from `reject_from` on queue rejection. Returns
  // whether the job was admitted (counts as a medium transfer).
  bool submit_remote(std::uint32_t client, std::size_t server,
                     const FleetOp& op, double net_time_s,
                     util::Seconds reject_from);

  // ---- client-side pieces (called from island steps; touch only the
  // client's own state plus read-only frozen views) -----------------------
  void complete_local(std::uint32_t client, util::Seconds t1);
  Decision decide(std::size_t island, std::uint32_t client, const FleetOp& op,
                  util::Seconds step_end);
  void run_local(std::uint32_t client, const FleetOp& op, util::Seconds from,
                 bool fallback);
  // `server` is the pool index for remote completions, -1 for plain local,
  // -2 for a local fallback (rejection or crash rerun).
  void credit_completion(std::uint32_t client, util::Seconds arrived,
                         util::Seconds finished, util::Joules energy,
                         util::Seconds ideal, int server);
  double ideal_time(std::uint32_t client, const FleetOp& op) const;
  static FleetOp meta_op(const RemoteMeta& meta);

  std::shared_ptr<const FleetScenario> scenario_;
  obs::Observability* session_;
  IslandPlan plan_;
  ClientStore store_;
  // Per-client trace shards, sized only when tracing is on (an empty
  // vector otherwise — 100k clients must not pay for shards they never
  // write). Merged into the session at finish() in client index order.
  std::vector<obs::TraceShard> traces_;
  // Execution-unit append buffers; pool_of_[c] is fixed at construction
  // (island index, or client chunk when there is one island).
  std::vector<PoolStore> pools_;
  std::vector<std::uint32_t> pool_of_;
  std::vector<ServerState> servers_;
  std::vector<IslandState> islands_;
  // Tick-lifetime scratch arenas: one per island (reset after every tick)
  // plus one for the sequential barrier exchange. Outside IslandState so
  // island state stays copyable; arenas hold no live data between ticks.
  std::vector<std::unique_ptr<util::Arena>> arenas_;
  util::Arena barrier_arena_;
  // Fastest pool server, precomputed: ideal_time() is on the completion
  // path and must not rescan the pool per op.
  double best_server_hz_ = 0.0;
  // Barrier-frozen views of every server, for cross-island decisions (own
  // servers read the island board instead). Rebuilt at each exchange.
  std::vector<monitor::ServerLoadView> frozen_views_;
  // Shared-medium congestion estimate: EWMA of concurrent remote transfers
  // per tick, folded position-wise across islands at each barrier; islands
  // read the same frozen value between barriers.
  util::Ewma medium_est_{0.4};
  // World-level medium availability at barrier time (its own cursor over
  // the link events), for admitting ferried cross-island submissions.
  bool barrier_medium_up_ = true;
  std::size_t barrier_fault_cursor_ = 0;
  // Expanded fault events (absolute time, stable order).
  std::vector<fault::FaultEvent> fault_events_;
  std::uint64_t cross_submissions_ = 0;
  bool finished_ = false;
  bool trace_on_ = false;
  // Pool for the single-island chunked decision stage; set by run_until.
  exec::ThreadPool* stage_pool_ = nullptr;
  double wall_seconds_ = 0.0;
  FleetReport report_;  // cached by finish()
  sim::IslandExecutor exec_;  // last: hooks bind to *this
};

// Convenience: build scenario + world, run to the horizon with `jobs`
// workers, and return the report (the `spectra fleet` entry point).
FleetReport run_fleet(const FleetConfig& config, std::size_t jobs,
                      obs::Observability* session);

}  // namespace spectra::scenario
