// Fleet-scale worlds: N Spectra clients against a shared server pool.
//
// The paper's testbeds are one client and a couple of servers; the fleet
// layer scales the world model to thousands of concurrent clients whose
// remote-execution decisions contend for the same pool. Three pieces:
//
//   * FleetScenario — a seeded generator that turns a FleetConfig into a
//     heterogeneous device mix (Itsy-class handhelds, ThinkPad-class
//     laptops, modern wall-powered boxes), per-client arrival schedules
//     (thinned-Poisson processes modulated by a diurnal wave and seeded
//     flash crowds), and a pool of shared servers. Everything is a pure
//     function of the seed.
//
//   * FleetWorld — a tick-based simulator over that scenario. Each tick:
//     fault events apply, servers serve their admission queues
//     (core::AdmissionQueue — bounded run queue, FIFO or weighted-fair),
//     remote completions are credited back, then every client with due
//     arrivals runs its decision pipeline against the last tick's published
//     load views (monitor::LoadBoard) — this stage fans out across the
//     exec::ThreadPool in fixed client chunks — and finally the accepted
//     decisions are submitted to the pool in deterministic (arrival time,
//     client) order. Server load observed by clients is therefore genuine
//     multi-tenant contention, not a scripted background factor.
//
//   * FleetReport — fleet-level metrics: p50/p99 end-to-end operation
//     latency (virtual, deterministic), wall-clock decision latency
//     percentiles (real, metrics-only), server utilization, aggregate
//     energy, and Jain's fairness index across clients.
//
// Determinism: decisions are pure functions of (client state, board view),
// per-client observability shards merge into the session in client index
// order, and every cross-client interaction happens in a sequential stage
// with a fixed order — so traces, metrics, and reports are byte-identical
// for any --jobs, and a cloned world replays bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "exec/thread_pool.h"
#include "fault/fault_plan.h"
#include "hw/power.h"
#include "monitor/load_board.h"
#include "obs/obs.h"
#include "util/interner.h"
#include "util/stats.h"
#include "util/units.h"

namespace spectra::scenario {

// ----------------------------------------------------------------- scenario

enum class DeviceClass { kItsy, kThinkpad, kModern };

const char* to_string(DeviceClass device);

struct FleetClientProfile {
  DeviceClass device = DeviceClass::kThinkpad;
  util::Symbol name;  // interned, e.g. "itsy-0042"
  util::Hertz cpu_hz = 0.0;
  double fp_penalty = 1.0;
  hw::PowerModel power;
  // Admission weight under the weighted-fair policy.
  double weight = 1.0;
  bool on_battery = false;
  // Energy-conservation importance c in the decision's utility product.
  double energy_importance = 0.0;
  // Per-client arrival-rate multiplier (some users are chattier).
  double rate_scale = 1.0;
};

// One operation arrival: the client must run `cycles` of work, shipping
// `bytes` over the shared medium if it executes remotely.
struct FleetOp {
  util::Seconds at = 0.0;
  util::Cycles cycles = 0.0;
  util::Bytes bytes = 0.0;
  bool fp_heavy = false;
};

struct FleetServerSpec {
  util::Symbol name;
  util::Hertz cpu_hz = 0.0;
  hw::PowerModel power;
};

struct FleetConfig {
  std::size_t clients = 1000;
  std::size_t servers = 8;
  std::uint64_t seed = 1;
  util::Seconds horizon = 300.0;
  util::Seconds tick = 0.5;
  core::AdmissionConfig admission;

  // Arrival process: per-client base rate, modulated by a diurnal sine wave
  // and flash crowds (seeded windows where the rate multiplies).
  double ops_per_client_hz = 0.04;
  double diurnal_amplitude = 0.6;       // rate *= 1 + A*sin(2*pi*t/period)
  util::Seconds diurnal_period = 120.0;
  int flash_crowds = 1;
  double flash_multiplier = 6.0;
  util::Seconds flash_duration = 10.0;

  // Device mix fractions (remainder is kModern).
  double itsy_fraction = 0.4;
  double thinkpad_fraction = 0.4;

  // Shared wireless medium (paper-shaped 2 Mb/s) and its base round trip.
  util::BytesPerSec bandwidth = 250e3;
  util::Seconds rtt = 0.02;

  // Optional fault plan: server_crash/server_restart address pool servers
  // by index, latency/bandwidth faults scale the shared medium, link faults
  // partition the medium outright. A battery_cliff addresses client
  // (a mod clients): its charge collapsed, so the radio goes dark and every
  // decision is forced local until the cliff's `duration` elapses (no
  // duration = the rest of the run).
  std::optional<fault::FaultPlan> fault_plan;
};

class FleetScenario {
 public:
  explicit FleetScenario(FleetConfig config);

  const FleetConfig& config() const { return config_; }
  const std::vector<FleetClientProfile>& profiles() const { return profiles_; }
  const std::vector<FleetServerSpec>& servers() const { return servers_; }
  // Per-client arrival schedules, each sorted by time.
  const std::vector<std::vector<FleetOp>>& schedules() const {
    return schedules_;
  }
  const std::vector<std::pair<util::Seconds, util::Seconds>>& flash_windows()
      const {
    return flash_windows_;
  }

  // Arrival-rate multiplier at time t (diurnal wave x flash crowds), before
  // the per-client rate scale. Exposed for tests.
  double rate_multiplier(util::Seconds t) const;

  std::size_t total_ops() const;

 private:
  FleetConfig config_;
  std::vector<FleetClientProfile> profiles_;
  std::vector<FleetServerSpec> servers_;
  std::vector<std::vector<FleetOp>> schedules_;
  std::vector<std::pair<util::Seconds, util::Seconds>> flash_windows_;
};

// ------------------------------------------------------------------- report

struct FleetReport {
  // Shape echo.
  std::size_t clients = 0;
  std::size_t servers = 0;
  core::AdmissionPolicy policy = core::AdmissionPolicy::kFifo;
  util::Seconds horizon = 0.0;

  // Deterministic aggregates (safe for goldens and --jobs identity).
  std::uint64_t decisions = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_local = 0;     // completed locally (chosen or fallback)
  std::uint64_t ops_remote = 0;    // completed on a pool server
  std::uint64_t ops_rejected = 0;  // admission rejections (fell back local)
  std::uint64_t ops_aborted = 0;   // lost to a server crash, rerun locally
  std::uint64_t battery_cliffs = 0;  // cliff events applied to clients
  double latency_p50_s = 0.0;      // end-to-end, virtual time
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double server_utilization_mean = 0.0;
  double server_utilization_min = 0.0;
  double server_utilization_max = 0.0;
  util::Joules aggregate_energy_j = 0.0;
  double jain_fairness = 0.0;  // over per-client mean slowdown, in (0, 1]
  util::Seconds virtual_end = 0.0;
  // FNV-1a over per-client and per-server outcome state; equal fingerprints
  // mean bit-identical fleet execution.
  std::uint64_t fingerprint = 0;

  // Wall-clock measurements (real time; never in goldens or stdout tables).
  double wall_seconds = 0.0;
  double decision_wall_p50_ms = 0.0;
  double decision_wall_p99_ms = 0.0;
  double decisions_per_wall_sec = 0.0;

  // Machine-readable form: deterministic fields first, wall-clock fields
  // under a "wall" object so consumers can strip them for identity checks.
  std::string to_json() const;
};

// -------------------------------------------------------------------- world

class FleetWorld {
 public:
  // `session` (nullable) receives merged per-client metrics and traces when
  // the run finishes. Tracing must be enabled before run_until is called.
  FleetWorld(std::shared_ptr<const FleetScenario> scenario,
             obs::Observability* session);

  const FleetScenario& scenario() const { return *scenario_; }
  util::Seconds now() const { return now_; }
  bool finished() const { return finished_; }

  // Advance whole ticks until virtual time reaches `until` (clamped to the
  // horizon). The per-tick decision stage fans out across `pool` (null runs
  // inline — the sequential reference path).
  void run_until(util::Seconds until, exec::ThreadPool* pool);

  // Run to the horizon, merge per-client shards into the session bundle (in
  // client index order), and build the report. Idempotent.
  FleetReport finish(exec::ThreadPool* pool);

  // Deep-copy mid-run state into a fresh world reporting to `obs`. The
  // clone continues bit-identically to this world: same decisions, same
  // admissions, same completions, same trace bytes from the start of the
  // run (per-client shard buffers are carried over).
  std::unique_ptr<FleetWorld> clone(obs::Observability* obs) const;

  // FNV-1a over mutable outcome state; exposed for clone/replay tests.
  std::uint64_t state_fingerprint() const;

 private:
  struct LocalRun {
    util::Seconds finish = 0.0;
    util::Seconds arrived = 0.0;
    util::Joules energy = 0.0;
    util::Seconds ideal = 0.0;  // best unloaded placement time for the op
    bool fallback = false;      // admission rejection or crash rerun
  };

  // Everything one client mutates; workers touch only their own clients.
  struct ClientState {
    std::size_t next_op = 0;         // cursor into the arrival schedule
    util::Seconds local_free_at = 0.0;
    std::vector<LocalRun> local_runs;  // FIFO, completion-ordered
    // Outcome accounting (drives the report and the fingerprint).
    std::uint64_t decisions = 0;
    std::uint64_t completed = 0;
    std::uint64_t completed_local = 0;
    std::uint64_t completed_remote = 0;
    std::uint64_t rejected = 0;
    std::uint64_t aborted = 0;
    // Battery-cliff degradation: decisions for ops arriving before
    // `forced_local_until` skip every remote alternative (radio dark).
    std::uint64_t battery_cliffs = 0;
    util::Seconds forced_local_until = 0.0;
    double latency_sum_s = 0.0;
    double slowdown_sum = 0.0;  // ideal/actual per completed op
    util::Joules energy_j = 0.0;
    std::vector<double> latencies_s;     // per completed op, virtual
    std::vector<double> decision_wall_ms;  // real; metrics only
    std::string trace;  // per-client JSONL shard, merged at finish
  };

  struct RemoteMeta {
    std::uint32_t client = 0;
    util::Seconds arrived = 0.0;
    util::Bytes bytes = 0.0;
    util::Seconds net_time = 0.0;  // uplink time already spent
    util::Cycles cycles = 0.0;
    bool fp_heavy = false;
  };

  struct ServerState {
    core::AdmissionQueue queue;
    bool up = true;
    // Job metadata by (id - 1); AdmissionQueue ids are sequential.
    std::vector<RemoteMeta> meta;
    util::Seconds busy_last = 0.0;  // busy_time() at the last publish
    ServerState(const core::AdmissionConfig& cfg) : queue(cfg) {}
  };

  // One decision produced by the parallel stage, applied sequentially.
  struct Decision {
    std::uint32_t client = 0;
    FleetOp op;
    int server = -1;  // -1 = local
    double predicted_s = 0.0;
    double net_time_s = 0.0;  // predicted uplink time, charged on admit
  };

  void apply_faults(util::Seconds t0, util::Seconds t1);
  void serve_servers(util::Seconds t0, util::Seconds t1);
  void decision_stage(util::Seconds t0, util::Seconds t1,
                      exec::ThreadPool* pool);
  void submit_stage(util::Seconds t1);
  void publish_loads(util::Seconds t0, util::Seconds t1);
  // Client-side pipeline pieces (called from pool workers; touch only the
  // client's own state plus read-only shared views).
  void complete_local(std::uint32_t client, util::Seconds t1);
  Decision decide(std::uint32_t client, const FleetOp& op);
  void run_local(std::uint32_t client, const FleetOp& op, util::Seconds from,
                 bool fallback);
  // `server` is the pool index for remote completions, -1 for plain local,
  // -2 for a local fallback (rejection or crash rerun).
  void credit_completion(std::uint32_t client, util::Seconds arrived,
                         util::Seconds finished, util::Joules energy,
                         util::Seconds ideal, int server);
  double ideal_time(std::uint32_t client, const FleetOp& op) const;
  void trace_event(std::string* buf, const obs::TraceEvent& event);

  std::shared_ptr<const FleetScenario> scenario_;
  obs::Observability* session_;
  std::vector<ClientState> clients_;
  std::vector<ServerState> servers_;
  monitor::LoadBoard board_;
  // Shared-medium congestion estimate: EWMA of concurrent remote transfers
  // per tick; all clients read the same value during a decision stage.
  util::Ewma medium_est_{0.4};
  bool medium_up_ = true;
  double rtt_factor_ = 1.0;
  double bandwidth_factor_ = 1.0;
  // Expanded fault events (absolute time, stable order) and a cursor.
  std::vector<fault::FaultEvent> fault_events_;
  std::size_t next_fault_ = 0;
  std::size_t remote_submissions_last_tick_ = 0;
  util::Seconds now_ = 0.0;
  bool finished_ = false;
  std::string fleet_trace_;  // world-level events (faults), merged first
  bool trace_on_ = false;
  // Scratch reused across ticks. decision_scratch_[client] receives the
  // client's remote picks during the parallel stage (own slot only).
  std::vector<std::vector<Decision>> decision_scratch_;
  std::vector<Decision> tick_decisions_;
  std::vector<core::AdmissionCompletion> tick_completions_;
  std::vector<core::AdmissionJob> tick_aborted_;
  double wall_seconds_ = 0.0;
  FleetReport report_;  // cached by finish()
};

// Convenience: build scenario + world, run to the horizon with `jobs`
// workers, and return the report (the `spectra fleet` entry point).
FleetReport run_fleet(const FleetConfig& config, std::size_t jobs,
                      obs::Observability* session);

}  // namespace spectra::scenario
