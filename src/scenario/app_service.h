// Simulator-backed DecisionService sessions for the serve daemon.
//
// app_service_factory() returns the core::ServiceFactory the CLI hands to
// src/serve: each (app, scenario, seed) request becomes one trained World
// whose SpectraClient runs the real decision pipeline. Sessions reuse the
// process-wide TrainedWorldCache — the first session for a configuration
// trains a template, every later one clones it (World::clone), so a
// 64-connection load generator pays one training, not 64.
//
// Supported apps:
//   nullop    — the Fig-10 null operation on the kOverhead testbed
//               (scenario "baseline" = 1 server, or "<N>srv"); the cheap
//               default for load generation.
//   speech    — Janus on the Itsy testbed (scenarios as `spectra speech`).
//   latex     — Latex on the ThinkPad testbed.
//   pangloss  — Pangloss-Lite on the ThinkPad testbed.
//
// Decisions and results are a pure function of (app, scenario, seed,
// request sequence): worlds are deterministic and sessions are
// single-operation-at-a-time, which is what makes daemon records
// replayable byte-for-byte.
#pragma once

#include "core/decision_service.h"

namespace spectra::scenario {

core::ServiceFactory app_service_factory();

}  // namespace spectra::scenario
