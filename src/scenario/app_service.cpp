#include "scenario/app_service.h"

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/janus.h"
#include "apps/latex.h"
#include "apps/pangloss.h"
#include "scenario/batch.h"
#include "scenario/experiment.h"
#include "scenario/scenarios.h"
#include "scenario/world.h"
#include "solver/utility.h"
#include "util/assert.h"

namespace spectra::scenario {
namespace {

enum class ServiceApp { kNullop, kSpeech, kLatex, kPangloss };

constexpr const char* kNullOpName = "null.op";

// ---- nullop world (the Fig-10 overhead testbed as a service) -------------

void install_null_service(core::SpectraServer& server) {
  server.register_service(kNullOpName, [](const rpc::Request&) {
    rpc::Response r;
    r.ok = true;
    r.payload = 64.0;
    return r;
  });
}

std::vector<solver::Alternative> nullop_alternatives(const World& world) {
  std::vector<solver::Alternative> alts;
  for (double level : {1.0, 0.0}) {
    solver::Alternative local;
    local.plan = 0;
    local.fidelity["level"] = level;
    alts.push_back(local);
    for (MachineId id : world.server_ids()) {
      solver::Alternative remote;
      remote.plan = 1;
      remote.server = id;
      remote.fidelity["level"] = level;
      alts.push_back(remote);
    }
  }
  return alts;
}

// Out-of-constructor setup for the kOverhead testbed: install the null
// RPC service everywhere and register the operation. Needed both when
// building a world and when cloning one — World::clone copies neither
// RPC handlers nor operation registrations into the fresh world.
void prepare_nullop_world(World& world) {
  for (MachineId id : world.server_ids()) {
    install_null_service(world.server(id));
  }
  install_null_service(world.spectra().local_server());

  core::OperationDesc desc;
  desc.name = kNullOpName;
  desc.plans = {{"local", false}, {"remote", true}};
  desc.fidelities = {{"level", {0.0, 1.0}}};
  desc.latency_fn = solver::inverse_latency();
  desc.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  world.spectra().register_fidelity(std::move(desc));
}

std::unique_ptr<World> build_nullop_world(std::size_t servers,
                                          std::uint64_t seed) {
  WorldConfig wc;
  wc.testbed = Testbed::kOverhead;
  wc.seed = seed;
  wc.overhead_servers = servers;
  auto world = std::make_unique<World>(wc);
  prepare_nullop_world(*world);
  world->settle(6.0);

  // Round-robin forced training over the whole alternative space so the
  // served decisions come from a model that has seen every placement.
  const auto alts = nullop_alternatives(*world);
  const int runs = static_cast<int>(alts.size()) * 3;
  for (int i = 0; i < runs; ++i) {
    world->spectra().begin_fidelity_op_forced(
        kNullOpName, {}, "", alts[static_cast<std::size_t>(i) % alts.size()]);
    rpc::Request req;
    req.op_type = kNullOpName;
    req.payload = 64.0;
    world->spectra().do_local_op(kNullOpName, req);
    world->spectra().end_fidelity_op();
  }
  world->settle(2.0);
  return world;
}

std::size_t nullop_servers(const std::string& scenario) {
  if (scenario.empty() || scenario == "baseline") return 1;
  // "<N>srv" selects the server count of the overhead testbed.
  const auto pos = scenario.find("srv");
  if (pos != std::string::npos && pos + 3 == scenario.size() && pos > 0) {
    std::size_t n = 0;
    for (char c : scenario.substr(0, pos)) {
      SPECTRA_REQUIRE(c >= '0' && c <= '9',
                      "unknown nullop scenario: " + scenario);
      n = n * 10 + static_cast<std::size_t>(c - '0');
    }
    SPECTRA_REQUIRE(n >= 1 && n <= 64,
                    "nullop scenario wants 1-64 servers: " + scenario);
    return n;
  }
  SPECTRA_REQUIRE(false, "unknown nullop scenario: " + scenario +
                             " (use baseline or <N>srv)");
  return 1;
}

std::unique_ptr<World> nullop_session_world(const std::string& scenario,
                                            std::uint64_t seed) {
  const std::size_t servers = nullop_servers(scenario);
  if (!default_reuse_trained_world()) {
    return build_nullop_world(servers, seed);
  }
  std::ostringstream key;
  key << "nullop|" << servers << '|' << seed;
  const auto tmpl = TrainedWorldCache::instance().get(
      key.str(), [&] { return build_nullop_world(servers, seed); });
  return tmpl->clone(nullptr,
                     [](World& w) { prepare_nullop_world(w); });
}

// ---- scenario parsing ----------------------------------------------------

template <typename S>
S parse_scenario(const std::string& text, const std::vector<S>& all) {
  const std::string want = text.empty() ? "baseline" : text;
  for (const S s : all) {
    if (name(s) == want) return s;
  }
  SPECTRA_REQUIRE(false, "unknown scenario: " + want);
  throw std::logic_error("unreachable");
}

// ---- the session ---------------------------------------------------------

class WorldDecisionService : public core::DecisionService {
 public:
  WorldDecisionService(ServiceApp app, std::string app_name,
                       std::string scenario, std::uint64_t seed,
                       std::unique_ptr<World> world)
      : app_(app),
        app_name_(std::move(app_name)),
        scenario_(std::move(scenario)),
        seed_(seed),
        world_(std::move(world)) {}

  core::ServiceStatus status() const override {
    core::ServiceStatus s;
    s.app = app_name_;
    s.scenario = scenario_;
    s.seed = seed_;
    s.op = op_name();
    s.ops_begun = ops_begun_;
    s.ops_completed = ops_completed_;
    s.op_in_progress = world_->spectra().op_in_progress();
    s.virtual_now = world_->engine().now();
    return s;
  }

  core::ServiceDecision begin_op(
      const core::ServiceBeginRequest& request) override {
    SPECTRA_REQUIRE(!world_->spectra().op_in_progress(),
                    "operation already in progress in this session");
    SPECTRA_REQUIRE(request.op.empty() || request.op == op_name(),
                    "session serves operation " + std::string(op_name()) +
                        ", not " + request.op);
    core::SpectraClient& spectra = world_->spectra();
    core::OperationChoice choice;
    switch (app_) {
      case ServiceApp::kNullop: {
        choice = spectra.begin_fidelity_op(kNullOpName, request.params);
        pending_ = [this] {
          rpc::Request req;
          req.op_type = kNullOpName;
          req.payload = 64.0;
          world_->spectra().do_local_op(kNullOpName, req);
        };
        break;
      }
      case ServiceApp::kSpeech: {
        const double utt = param_or(request, "utt_len", 2.0);
        choice = spectra.begin_fidelity_op(apps::JanusApp::kOperation,
                                           {{"utt_len", utt}});
        pending_ = [this, utt] {
          world_->janus().execute(world_->spectra(), utt);
        };
        break;
      }
      case ServiceApp::kLatex: {
        const std::string doc =
            request.data_tag.empty() ? "small" : request.data_tag;
        SPECTRA_REQUIRE(doc == "small" || doc == "large",
                        "latex data tag must be small or large, got: " + doc);
        choice = spectra.begin_fidelity_op(apps::LatexApp::kOperation, {}, doc);
        pending_ = [this, doc] {
          world_->latex().execute(world_->spectra(), doc);
        };
        break;
      }
      case ServiceApp::kPangloss: {
        const int words =
            static_cast<int>(param_or(request, "words", 10.0));
        SPECTRA_REQUIRE(words >= 1, "pangloss needs words >= 1");
        choice = spectra.begin_fidelity_op(
            apps::PanglossApp::kOperation,
            {{"words", static_cast<double>(words)}});
        pending_ = [this, words] {
          world_->pangloss().execute(world_->spectra(), words);
        };
        break;
      }
    }
    SPECTRA_REQUIRE(choice.ok, "no feasible alternative for " +
                                   std::string(op_name()));
    ++ops_begun_;

    const auto& desc = spectra.operation_desc(op_name());
    core::ServiceDecision d;
    d.ok = true;
    d.from_model = choice.from_model;
    d.plan = desc.plans[static_cast<std::size_t>(choice.alternative.plan)].name;
    d.placement = choice.alternative.server < 0
                      ? "local"
                      : "s" + std::to_string(choice.alternative.server);
    d.fidelity = choice.alternative.fidelity;
    d.predicted_time_s = choice.predicted.time;
    d.predicted_energy_j = choice.predicted.energy;
    d.log_utility = choice.log_utility;
    d.t = world_->engine().now();
    return d;
  }

  core::ServiceOpResult end_op() override {
    SPECTRA_REQUIRE(world_->spectra().op_in_progress() && pending_,
                    "no operation in progress in this session");
    auto run = std::move(pending_);
    pending_ = nullptr;
    try {
      run();
    } catch (...) {
      // Abort the in-flight fidelity op so the session returns to a usable
      // idle state; otherwise op_in_progress stays true with pending_ gone
      // and every later begin_op/end_op on this session fails forever.
      try {
        if (world_->spectra().op_in_progress()) {
          world_->spectra().end_fidelity_op();
        }
      } catch (...) {
        // Best effort — surface the original execution failure.
      }
      throw;
    }
    const monitor::OperationUsage usage = world_->spectra().end_fidelity_op();
    ++ops_completed_;
    core::ServiceOpResult r;
    r.ok = true;
    r.seq = ops_completed_;
    r.time_s = usage.elapsed;
    r.energy_j = usage.energy;
    r.t = world_->engine().now();
    return r;
  }

 private:
  const char* op_name() const {
    switch (app_) {
      case ServiceApp::kNullop:
        return kNullOpName;
      case ServiceApp::kSpeech:
        return apps::JanusApp::kOperation;
      case ServiceApp::kLatex:
        return apps::LatexApp::kOperation;
      case ServiceApp::kPangloss:
        return apps::PanglossApp::kOperation;
    }
    return "";
  }

  static double param_or(const core::ServiceBeginRequest& request,
                         const std::string& name, double def) {
    auto it = request.params.find(name);
    return it == request.params.end() ? def : it->second;
  }

  ServiceApp app_;
  std::string app_name_;
  std::string scenario_;
  std::uint64_t seed_;
  std::unique_ptr<World> world_;
  std::function<void()> pending_;
  std::uint64_t ops_begun_ = 0;
  std::uint64_t ops_completed_ = 0;
};

std::unique_ptr<core::DecisionService> make_session(const std::string& app,
                                                    const std::string& scenario,
                                                    std::uint64_t seed) {
  if (app == "nullop" || app.empty()) {
    return std::make_unique<WorldDecisionService>(
        ServiceApp::kNullop, "nullop", scenario.empty() ? "baseline" : scenario,
        seed, nullop_session_world(scenario, seed));
  }
  if (app == "speech") {
    SpeechExperiment::Config cfg;
    cfg.scenario = parse_scenario<SpeechScenario>(
        scenario, {SpeechScenario::kBaseline, SpeechScenario::kEnergy,
                   SpeechScenario::kNetwork, SpeechScenario::kCpu,
                   SpeechScenario::kFileCache});
    cfg.seed = seed;
    return std::make_unique<WorldDecisionService>(
        ServiceApp::kSpeech, "speech", name(cfg.scenario), seed,
        SpeechExperiment(cfg).session_world());
  }
  if (app == "latex") {
    LatexExperiment::Config cfg;
    cfg.scenario = parse_scenario<LatexScenario>(
        scenario, {LatexScenario::kBaseline, LatexScenario::kFileCache,
                   LatexScenario::kReintegrate, LatexScenario::kEnergy});
    cfg.seed = seed;
    return std::make_unique<WorldDecisionService>(
        ServiceApp::kLatex, "latex", name(cfg.scenario), seed,
        LatexExperiment(cfg).session_world());
  }
  if (app == "pangloss") {
    PanglossExperiment::Config cfg;
    cfg.scenario = parse_scenario<PanglossScenario>(
        scenario, {PanglossScenario::kBaseline, PanglossScenario::kFileCache,
                   PanglossScenario::kCpu});
    cfg.seed = seed;
    return std::make_unique<WorldDecisionService>(
        ServiceApp::kPangloss, "pangloss", name(cfg.scenario), seed,
        PanglossExperiment(cfg).session_world());
  }
  SPECTRA_REQUIRE(false, "unknown app: " + app +
                             " (use nullop, speech, latex, or pangloss)");
  return nullptr;
}

}  // namespace

core::ServiceFactory app_service_factory() {
  return [](const std::string& app, const std::string& scenario,
            std::uint64_t seed) { return make_session(app, scenario, seed); };
}

}  // namespace spectra::scenario
