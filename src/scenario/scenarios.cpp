#include "scenario/scenarios.h"

#include "monitor/battery_monitor.h"
#include "util/assert.h"

namespace spectra::scenario {

std::string name(SpeechScenario s) {
  switch (s) {
    case SpeechScenario::kBaseline: return "baseline";
    case SpeechScenario::kEnergy: return "energy";
    case SpeechScenario::kNetwork: return "network";
    case SpeechScenario::kCpu: return "cpu";
    case SpeechScenario::kFileCache: return "file-cache";
  }
  return "?";
}

std::string name(LatexScenario s) {
  switch (s) {
    case LatexScenario::kBaseline: return "baseline";
    case LatexScenario::kFileCache: return "file-cache";
    case LatexScenario::kReintegrate: return "reintegrate";
    case LatexScenario::kEnergy: return "energy";
  }
  return "?";
}

std::string name(PanglossScenario s) {
  switch (s) {
    case PanglossScenario::kBaseline: return "baseline";
    case PanglossScenario::kFileCache: return "file-cache";
    case PanglossScenario::kCpu: return "cpu";
  }
  return "?";
}

void pin_energy_importance(World& world, double c) {
  auto* monitor = dynamic_cast<monitor::BatteryMonitor*>(
      world.spectra().monitors().find("battery"));
  SPECTRA_REQUIRE(monitor != nullptr, "client has no battery monitor");
  monitor->adaptation().pin_importance(c);
}

void apply(World& world, SpeechScenario s) {
  switch (s) {
    case SpeechScenario::kBaseline:
      break;
    case SpeechScenario::kEnergy:
      // Battery powered with an ambitious 10-hour lifetime goal.
      world.client_machine().set_on_battery(true);
      world.spectra().set_battery_lifetime_goal(10.0 * 3600);
      pin_energy_importance(world, kSpeechEnergyImportance);
      break;
    case SpeechScenario::kNetwork:
      // Halve the bandwidth between client and server.
      world.network().set_link_bandwidth(kClient, kServerT20, 5750.0);
      break;
    case SpeechScenario::kCpu:
      // A CPU-intensive background job on the client.
      world.client_machine().set_background_procs(1.0);
      break;
    case SpeechScenario::kFileCache:
      // Network partition: the Spectra server is unreachable, the file
      // servers stay reachable; the full vocabulary's 277 KB language
      // model is flushed from the client's cache.
      world.network().set_link_up(kClient, kServerT20, false);
      world.coda(kClient).evict(world.janus().config().lm_full_path);
      break;
  }
}

void apply(World& world, LatexScenario s) {
  const auto& small = world.latex().document("small");
  switch (s) {
    case LatexScenario::kBaseline:
      break;
    case LatexScenario::kFileCache:
      // Server B has no input files cached.
      for (const auto& doc : world.latex().config().documents) {
        for (const auto& f : doc.files) world.coda(kServerB).evict(f.path);
      }
      break;
    case LatexScenario::kReintegrate:
      // The small document's 70 KB top-level input is modified on the
      // client; remote execution must reintegrate it first.
      world.coda(kClient).write(small.files.front().path);
      break;
    case LatexScenario::kEnergy:
      // Reintegrate scenario + battery power + very aggressive goal.
      world.coda(kClient).write(small.files.front().path);
      world.client_machine().set_on_battery(true);
      world.spectra().set_battery_lifetime_goal(12.0 * 3600);
      pin_energy_importance(world, kLatexEnergyImportance);
      break;
  }
}

void apply(World& world, PanglossScenario s) {
  const auto corpus =
      world.pangloss().config().components[apps::PanglossApp::kEbmt].file_path;
  switch (s) {
    case PanglossScenario::kBaseline:
      break;
    case PanglossScenario::kCpu:
      // File-cache scenario plus two CPU-intensive processes on server A.
      world.coda(kServerB).evict(corpus);
      world.machine(kServerA).set_background_procs(2.0);
      break;
    case PanglossScenario::kFileCache:
      // The 12 MB EBMT corpus is evicted from server B's cache.
      world.coda(kServerB).evict(corpus);
      break;
  }
}

}  // namespace spectra::scenario
