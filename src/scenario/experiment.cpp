#include "scenario/experiment.h"

#include <chrono>
#include <set>
#include <sstream>

#include "util/assert.h"

namespace spectra::scenario {

namespace {

using apps::JanusApp;
using apps::LatexApp;
using apps::PanglossApp;

double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MeasuredRun to_run(const core::OperationChoice& choice,
                   const monitor::OperationUsage& usage) {
  MeasuredRun run;
  run.feasible = true;
  run.time = usage.elapsed;
  run.energy = usage.energy;
  run.choice = choice;
  run.usage = usage;
  return run;
}

// Scoped timer for one experiment phase (setup / train / settle / measure):
// records wall and virtual elapsed time as histograms and, when tracing,
// emits a `phase` event at the phase's end. Wall time never enters the
// trace — it would break replay bit-identity.
class PhaseTimer {
 public:
  PhaseTimer(obs::Observability* obs, sim::Engine& engine, std::string name)
      : obs_(obs),
        engine_(engine),
        name_(std::move(name)),
        wall0_(wall_ms()),
        virt0_(engine.now()) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (obs_ == nullptr) return;
    const util::Seconds virt = engine_.now() - virt0_;
    obs_->metrics().histogram("phase." + name_ + ".wall_ms")
        .observe(wall_ms() - wall0_);
    obs_->metrics().histogram("phase." + name_ + ".virtual_s").observe(virt);
    if (obs_->tracing()) {
      obs::TraceEvent ev("phase", engine_.now());
      ev.field("name", name_).field("virtual_s", virt);
      obs_->trace()->emit(ev);
    }
  }

 private:
  obs::Observability* obs_;
  sim::Engine& engine_;
  std::string name_;
  double wall0_;
  util::Seconds virt0_;
};

// Shared template acquisition: globally cacheable configurations (no
// observability, no overrides, no fault plan) go through the process-wide
// TrainedWorldCache so several experiment instances with the same training
// shape — e.g. one per test sentence — share one trained world; everything
// else trains at most once per experiment instance.
std::shared_ptr<const World> acquire_template(
    bool cacheable, const std::string& key, std::once_flag& once,
    std::shared_ptr<const World>& slot,
    const std::function<std::unique_ptr<World>()>& build) {
  if (cacheable) return TrainedWorldCache::instance().get(key, build);
  std::call_once(once, [&] { slot = build(); });
  return slot;
}

// Clone a trained template for one measurement run, recording what the
// reuse path actually costs as phase.clone.wall_ms. Wall-only on purpose:
// a clone advances no virtual time, and wall-suffixed metrics stay out of
// goldens and replay checks, so the counter cannot perturb determinism.
std::unique_ptr<World> clone_template(const World& tmpl,
                                      obs::Observability* run_obs) {
  const double t0 = wall_ms();
  auto world = tmpl.clone(run_obs);
  if (run_obs != nullptr) {
    run_obs->metrics().histogram("phase.clone.wall_ms")
        .observe(wall_ms() - t0);
  }
  return world;
}

}  // namespace

// ------------------------------------------------------------------ speech

std::vector<solver::Alternative> SpeechExperiment::alternatives() {
  std::vector<solver::Alternative> out;
  for (int plan :
       {JanusApp::kPlanLocal, JanusApp::kPlanHybrid, JanusApp::kPlanRemote}) {
    for (double vocab : {JanusApp::kVocabReduced, JanusApp::kVocabFull}) {
      out.push_back(JanusApp::alternative(plan, vocab, kServerT20));
    }
  }
  return out;
}

std::string SpeechExperiment::label(const solver::Alternative& alt) {
  static const char* kPlans[] = {"local", "hybrid", "remote"};
  std::string s = kPlans[alt.plan];
  s += alt.fidelity.at("vocab") >= JanusApp::kVocabFull ? "-full" : "-reduced";
  return s;
}

std::unique_ptr<World> SpeechExperiment::trained_world(
    obs::Observability* obs) const {
  WorldConfig wc;
  wc.testbed = Testbed::kItsy;
  wc.seed = config_.seed;
  wc.spectra.obs = obs;
  if (config_.spectra_overrides) config_.spectra_overrides(wc.spectra);
  auto world = std::make_unique<World>(wc);
  {
    PhaseTimer phase(obs, world->engine(), "setup");
    world->warm_all_caches();
    world->probe_fetch_rates();
    world->settle(6.0);
  }

  {
    PhaseTimer phase(obs, world->engine(), "train");
    util::Rng rng(config_.seed * 77 + 13);
    const auto alts = alternatives();
    for (int i = 0; i < config_.training_runs; ++i) {
      const double len = rng.uniform(1.0, 3.5);
      world->janus().run_forced(
          world->spectra(), len,
          alts[static_cast<std::size_t>(i) % alts.size()]);
    }
  }
  {
    PhaseTimer phase(obs, world->engine(), "settle");
    apply(*world, config_.scenario);
    world->settle(config_.settle_time);
    if (config_.fault_plan) world->arm_faults(*config_.fault_plan);
  }
  return world;
}

std::shared_ptr<const World> SpeechExperiment::template_world() const {
  const bool cacheable = config_.obs == nullptr &&
                         !config_.spectra_overrides && !config_.fault_plan;
  std::ostringstream key;
  key << "speech|" << static_cast<int>(config_.scenario) << '|'
      << config_.seed << '|' << config_.training_runs << '|'
      << config_.settle_time;
  return acquire_template(cacheable, key.str(), template_once_, template_,
                          [this] { return trained_world(config_.obs); });
}

std::unique_ptr<World> SpeechExperiment::measurement_world(
    obs::Observability* run_obs) const {
  if (config_.reuse_trained_world) {
    return clone_template(*template_world(), run_obs);
  }
  return trained_world(run_obs);
}

MeasuredRun SpeechExperiment::measure(const solver::Alternative& alt,
                                      obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  try {
    const auto usage = world->janus().run_forced(
        world->spectra(), config_.test_utterance_s, alt);
    MeasuredRun run = to_run(core::OperationChoice{}, usage);
    run.choice.alternative = alt;
    return run;
  } catch (const util::ContractError&) {
    return MeasuredRun{};  // infeasible under this scenario
  }
}

MeasuredRun SpeechExperiment::run_spectra(obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  PhaseTimer phase(run_obs, world->engine(), "measure");
  // Capture the choice before end_fidelity_op clears it.
  std::map<std::string, double> params{
      {"utt_len", config_.test_utterance_s}};
  const auto choice = world->spectra().begin_fidelity_op(
      JanusApp::kOperation, params);
  SPECTRA_REQUIRE(choice.ok, "Spectra made no choice");
  world->janus().execute(world->spectra(), config_.test_utterance_s);
  const auto usage = world->spectra().end_fidelity_op();
  return to_run(choice, usage);
}

// ------------------------------------------------------------------- latex

std::vector<solver::Alternative> LatexExperiment::alternatives() {
  return {LatexApp::alternative(LatexApp::kPlanLocal),
          LatexApp::alternative(LatexApp::kPlanRemote, kServerA),
          LatexApp::alternative(LatexApp::kPlanRemote, kServerB)};
}

std::string LatexExperiment::label(const solver::Alternative& alt) {
  if (alt.plan == LatexApp::kPlanLocal) return "local";
  return alt.server == kServerA ? "serverA" : "serverB";
}

std::unique_ptr<World> LatexExperiment::trained_world(
    obs::Observability* obs) const {
  WorldConfig wc;
  wc.testbed = Testbed::kThinkpad;
  wc.seed = config_.seed;
  wc.spectra.obs = obs;
  if (config_.spectra_overrides) config_.spectra_overrides(wc.spectra);
  auto world = std::make_unique<World>(wc);
  {
    PhaseTimer phase(obs, world->engine(), "setup");
    world->warm_all_caches();
    world->probe_fetch_rates();
    world->settle(6.0);
  }

  {
    PhaseTimer phase(obs, world->engine(), "train");
    const auto alts = alternatives();
    for (int i = 0; i < config_.training_runs; ++i) {
      const std::string doc = (i % 2 == 0) ? "small" : "large";
      world->latex().run_forced(world->spectra(), doc,
                                alts[static_cast<std::size_t>(i / 2) %
                                     alts.size()]);
    }
  }
  {
    PhaseTimer phase(obs, world->engine(), "settle");
    apply(*world, config_.scenario);
    world->settle(config_.settle_time);
    if (config_.fault_plan) world->arm_faults(*config_.fault_plan);
  }
  return world;
}

std::shared_ptr<const World> LatexExperiment::template_world() const {
  const bool cacheable = config_.obs == nullptr &&
                         !config_.spectra_overrides && !config_.fault_plan;
  std::ostringstream key;
  key << "latex|" << static_cast<int>(config_.scenario) << '|' << config_.seed
      << '|' << config_.training_runs << '|' << config_.settle_time;
  return acquire_template(cacheable, key.str(), template_once_, template_,
                          [this] { return trained_world(config_.obs); });
}

std::unique_ptr<World> LatexExperiment::measurement_world(
    obs::Observability* run_obs) const {
  if (config_.reuse_trained_world) {
    return clone_template(*template_world(), run_obs);
  }
  return trained_world(run_obs);
}

MeasuredRun LatexExperiment::measure(const solver::Alternative& alt,
                                     obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  try {
    const auto usage =
        world->latex().run_forced(world->spectra(), config_.doc, alt);
    MeasuredRun run = to_run(core::OperationChoice{}, usage);
    run.choice.alternative = alt;
    return run;
  } catch (const util::ContractError&) {
    return MeasuredRun{};
  }
}

MeasuredRun LatexExperiment::run_spectra(obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  PhaseTimer phase(run_obs, world->engine(), "measure");
  const auto choice = world->spectra().begin_fidelity_op(
      LatexApp::kOperation, {}, config_.doc);
  SPECTRA_REQUIRE(choice.ok, "Spectra made no choice");
  world->latex().execute(world->spectra(), config_.doc);
  const auto usage = world->spectra().end_fidelity_op();
  return to_run(choice, usage);
}

// ---------------------------------------------------------------- pangloss

std::vector<solver::Alternative> PanglossExperiment::alternatives() {
  std::vector<solver::Alternative> out;
  std::set<std::string> seen;
  for (int mask = 0; mask < PanglossApp::kPlanCount; ++mask) {
    for (int fid = 1; fid < 8; ++fid) {
      const bool ebmt = (fid & 1) != 0;
      const bool gloss = (fid & 2) != 0;
      const bool dict = (fid & 4) != 0;
      for (MachineId server : {kServerA, kServerB}) {
        const auto alt =
            PanglossApp::alternative(mask, ebmt, gloss, dict, server);
        if (seen.insert(alt.describe()).second) out.push_back(alt);
      }
    }
  }
  return out;
}

std::string PanglossExperiment::label(const solver::Alternative& alt) {
  std::ostringstream os;
  static const char* kNames[] = {"ebmt", "gloss", "dict", "lm"};
  bool any = false;
  for (int c = 0; c <= PanglossApp::kLm; ++c) {
    const bool enabled =
        c == PanglossApp::kLm || alt.fidelity.at(kNames[c]) > 0.5;
    if (!enabled) continue;
    if (any) os << '+';
    any = true;
    os << kNames[c];
    os << ((alt.plan & (1 << c)) != 0
               ? (alt.server == kServerA ? "@A" : "@B")
               : "@L");
  }
  return os.str();
}

std::unique_ptr<World> PanglossExperiment::trained_world(
    obs::Observability* obs) const {
  WorldConfig wc;
  wc.testbed = Testbed::kThinkpad;
  wc.seed = config_.seed;
  wc.spectra.obs = obs;
  if (config_.spectra_overrides) config_.spectra_overrides(wc.spectra);
  auto world = std::make_unique<World>(wc);
  {
    PhaseTimer phase(obs, world->engine(), "setup");
    world->warm_all_caches();
    world->probe_fetch_rates();
    world->settle(6.0);
  }

  {
    PhaseTimer phase(obs, world->engine(), "train");
    util::Rng rng(config_.seed * 91 + 7);
    for (int i = 0; i < config_.training_runs; ++i) {
      const int words = static_cast<int>(rng.uniform_int(4, 44));
      const int fid = 1 + static_cast<int>(rng.uniform_int(0, 6));
      const int mask = static_cast<int>(rng.uniform_int(0, 15));
      const MachineId server = (i % 2 == 0) ? kServerA : kServerB;
      const auto alt = PanglossApp::alternative(mask, (fid & 1) != 0,
                                                (fid & 2) != 0,
                                                (fid & 4) != 0, server);
      world->pangloss().run_forced(world->spectra(), words, alt);
    }
  }
  {
    PhaseTimer phase(obs, world->engine(), "settle");
    apply(*world, config_.scenario);
    world->settle(config_.settle_time);
    if (config_.fault_plan) world->arm_faults(*config_.fault_plan);
  }
  return world;
}

std::shared_ptr<const World> PanglossExperiment::template_world() const {
  const bool cacheable = config_.obs == nullptr &&
                         !config_.spectra_overrides && !config_.fault_plan;
  std::ostringstream key;
  key << "pangloss|" << static_cast<int>(config_.scenario) << '|'
      << config_.seed << '|' << config_.training_runs << '|'
      << config_.settle_time;
  return acquire_template(cacheable, key.str(), template_once_, template_,
                          [this] { return trained_world(config_.obs); });
}

std::unique_ptr<World> PanglossExperiment::measurement_world(
    obs::Observability* run_obs) const {
  if (config_.reuse_trained_world) {
    return clone_template(*template_world(), run_obs);
  }
  return trained_world(run_obs);
}

MeasuredRun PanglossExperiment::measure(const solver::Alternative& alt,
                                        obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  try {
    const auto usage =
        world->pangloss().run_forced(world->spectra(), config_.test_words,
                                     alt);
    MeasuredRun run = to_run(core::OperationChoice{}, usage);
    run.choice.alternative = PanglossApp::canonical(alt);
    return run;
  } catch (const util::ContractError&) {
    return MeasuredRun{};
  }
}

MeasuredRun PanglossExperiment::run_spectra(obs::Observability* run_obs) const {
  auto world = measurement_world(run_obs);
  PhaseTimer phase(run_obs, world->engine(), "measure");
  std::map<std::string, double> params{
      {"words", static_cast<double>(config_.test_words)}};
  const auto choice = world->spectra().begin_fidelity_op(
      PanglossApp::kOperation, params);
  SPECTRA_REQUIRE(choice.ok, "Spectra made no choice");
  world->pangloss().execute(world->spectra(), config_.test_words);
  const auto usage = world->spectra().end_fidelity_op();
  return to_run(choice, usage);
}

double PanglossExperiment::achieved_utility(const MeasuredRun& run,
                                            const solver::Alternative& alt) {
  if (!run.feasible) return 0.0;
  const apps::PanglossConfig cfg;
  const auto latency =
      solver::deadline_latency(cfg.deadline_lo, cfg.deadline_hi);
  double fidelity = 0.0;
  static const char* kNames[] = {"ebmt", "gloss", "dict"};
  for (int c = 0; c <= PanglossApp::kDict; ++c) {
    auto it = alt.fidelity.find(kNames[c]);
    if (it != alt.fidelity.end() && it->second > 0.5) {
      fidelity += cfg.components[c].fidelity;
    }
  }
  return latency(run.time) * fidelity;
}

// --------------------------------------------------------------- overhead

namespace {

constexpr const char* kNullOp = "null.op";

void install_null_service(core::SpectraServer& server) {
  server.register_service(kNullOp, [](const rpc::Request&) {
    rpc::Response r;
    r.ok = true;
    r.payload = 64.0;
    return r;
  });
}

double register_null_op(core::SpectraClient& client) {
  core::OperationDesc desc;
  desc.name = kNullOp;
  desc.plans = {{"local", false}, {"remote", true}};
  desc.fidelities = {{"level", {0.0, 1.0}}};
  desc.latency_fn = solver::inverse_latency();
  desc.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  const double t0 = wall_ms();
  client.register_fidelity(std::move(desc));
  return wall_ms() - t0;
}

}  // namespace

OverheadReport OverheadExperiment::run() const {
  WorldConfig wc;
  wc.testbed = Testbed::kOverhead;
  wc.seed = config_.seed;
  wc.overhead_servers = config_.servers;
  wc.spectra.obs = config_.obs;
  World world(wc);
  for (MachineId id : world.server_ids()) {
    install_null_service(world.server(id));
  }
  install_null_service(world.spectra().local_server());

  OverheadReport report;
  report.servers = config_.servers;
  report.register_ms = register_null_op(world.spectra());
  world.settle(6.0);

  // Train so the measured begin_fidelity_op runs the full decision path.
  auto one_run = [&](bool forced_local) {
    if (forced_local) {
      solver::Alternative local;
      local.plan = 0;
      local.fidelity["level"] = 1.0;
      world.spectra().begin_fidelity_op_forced(kNullOp, {}, "", local);
    } else {
      world.spectra().begin_fidelity_op(kNullOp, {});
    }
    rpc::Request req;
    req.op_type = kNullOp;
    req.payload = 64.0;
    // The null operation always executes locally regardless of the chosen
    // plan; only the decision cost is being measured.
    world.spectra().do_local_op(kNullOp, req);
    world.spectra().end_fidelity_op();
  };
  for (int i = 0; i < 16; ++i) one_run(/*forced_local=*/true);

  // Measured runs.
  double begin_sum = 0, cache_sum = 0, choose_sum = 0, other_sum = 0;
  double local_sum = 0, end_sum = 0, total_sum = 0, virtual_sum = 0;
  for (int i = 0; i < config_.measured_runs; ++i) {
    const double t0 = wall_ms();
    const auto choice = world.spectra().begin_fidelity_op(kNullOp, {});
    const double t1 = wall_ms();
    rpc::Request req;
    req.op_type = kNullOp;
    req.payload = 64.0;
    world.spectra().do_local_op(kNullOp, req);
    const double t2 = wall_ms();
    world.spectra().end_fidelity_op();
    const double t3 = wall_ms();

    begin_sum += t1 - t0;
    cache_sum += choice.wall_cache_prediction * 1000.0;
    choose_sum += choice.wall_choosing * 1000.0;
    other_sum += (t1 - t0) - choice.wall_cache_prediction * 1000.0 -
                 choice.wall_choosing * 1000.0;
    local_sum += t2 - t1;
    end_sum += t3 - t2;
    total_sum += t3 - t0;
    virtual_sum += choice.virtual_decision_time * 1000.0;
  }
  const double n = config_.measured_runs;
  report.begin_ms = begin_sum / n;
  report.cache_prediction_ms = cache_sum / n;
  report.choosing_ms = choose_sum / n;
  report.begin_other_ms = other_sum / n;
  report.do_local_ms = local_sum / n;
  report.end_ms = end_sum / n;
  report.total_ms = total_sum / n;
  report.virtual_decision_ms = virtual_sum / n;

  // Pathological full-cache cache prediction (the paper's 359.6 ms case).
  for (std::size_t i = 0; i < config_.full_cache_files; ++i) {
    const std::string path = "full/f" + std::to_string(i);
    world.file_server().create({path, 4096.0, "full"});
    world.coda(kClient).warm(path);
  }
  double full_sum = 0;
  const int full_runs = 32;
  for (int i = 0; i < full_runs; ++i) {
    const auto choice = world.spectra().begin_fidelity_op(kNullOp, {});
    rpc::Request req;
    req.op_type = kNullOp;
    req.payload = 64.0;
    world.spectra().do_local_op(kNullOp, req);
    world.spectra().end_fidelity_op();
    full_sum += choice.wall_cache_prediction * 1000.0;
  }
  report.cache_prediction_full_ms = full_sum / full_runs;
  return report;
}

}  // namespace spectra::scenario
