#include "scenario/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory_resource>
#include <numbers>
#include <sstream>

#include "obs/memaudit.h"
#include "util/assert.h"
#include "util/fnv.h"
#include "util/rng.h"
#include "util/shutdown.h"

namespace spectra::scenario {

using namespace util;  // NOLINT: unit literals (_KB, _MB)

namespace {

// Clients are processed in fixed chunks of this many per pool task, so the
// work partition (and thus every per-client artifact) is independent of the
// worker count.
constexpr std::size_t kClientChunk = 64;

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ----------------------------------------------------------------- scenario

const char* to_string(DeviceClass device) {
  switch (device) {
    case DeviceClass::kItsy: return "itsy";
    case DeviceClass::kThinkpad: return "thinkpad";
    case DeviceClass::kModern: return "modern";
  }
  return "unknown";
}

const char* to_string(FleetWorkload workload) {
  switch (workload) {
    case FleetWorkload::kMixed: return "mixed";
    case FleetWorkload::kSpeech: return "speech";
  }
  return "unknown";
}

FleetScenario::FleetScenario(FleetConfig config) : config_(config) {
  const obs::MemScope mem_scope(obs::MemScopeId::kScenario);
  SPECTRA_REQUIRE(config_.clients >= 1, "fleet needs at least one client");
  SPECTRA_REQUIRE(config_.servers >= 1, "fleet needs at least one server");
  SPECTRA_REQUIRE(config_.tick > 0.0, "fleet tick must be positive");
  SPECTRA_REQUIRE(config_.horizon > 0.0, "fleet horizon must be positive");
  SPECTRA_REQUIRE(config_.bandwidth > 0.0, "fleet bandwidth must be positive");
  SPECTRA_REQUIRE(config_.lookahead >= 0.0,
                  "fleet lookahead must be non-negative");
  SPECTRA_REQUIRE(config_.itsy_fraction >= 0.0 &&
                      config_.thinkpad_fraction >= 0.0 &&
                      config_.itsy_fraction + config_.thinkpad_fraction <= 1.0,
                  "device mix fractions must be a sub-probability");

  // Pool servers alternate the paper's two server classes (400 MHz vs
  // 933 MHz), so placement has a real speed/contention trade to make.
  servers_.reserve(config_.servers);
  for (std::size_t s = 0; s < config_.servers; ++s) {
    FleetServerSpec spec;
    std::ostringstream name;
    name << "server-" << s;
    spec.name = util::intern(name.str());
    if (s % 2 == 0) {
      spec.cpu_hz = 400e6;
      spec.power = hw::PowerModel{20.0, 10.0, 2.0};
    } else {
      spec.cpu_hz = 933e6;
      spec.power = hw::PowerModel{25.0, 15.0, 2.0};
    }
    servers_.push_back(spec);
  }

  util::Rng rng(config_.seed);

  // Flash crowds: seeded windows in the middle of the run where the arrival
  // rate multiplies fleet-wide. Drawn before the per-client streams so the
  // windows are a function of (seed, flash config) alone.
  for (int k = 0; k < config_.flash_crowds; ++k) {
    const util::Seconds start =
        rng.uniform(0.1, 0.8) * config_.horizon;
    flash_windows_.emplace_back(start, start + config_.flash_duration);
  }

  profiles_.reserve(config_.clients);
  schedule_off_.reserve(config_.clients + 1);
  schedule_off_.push_back(0);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    // Each client gets a forked stream: its profile and schedule are
    // independent of how many draws any other client consumed.
    util::Rng crng = rng.fork();

    FleetClientProfile profile;
    const double mix = crng.uniform();
    std::ostringstream name;
    if (mix < config_.itsy_fraction) {
      // Itsy-class handheld: slow, software floating point, tiny battery —
      // remote execution is its lifeline, so it gets the largest fair-share
      // weight and cares most about energy.
      profile.device = DeviceClass::kItsy;
      profile.cpu_hz = 206e6;
      profile.fp_penalty = 3.0;
      profile.power = hw::PowerModel{0.15, 1.55, 0.35};
      profile.weight = 2.0;
      profile.on_battery = true;
      profile.energy_importance = 0.8;
    } else if (mix < config_.itsy_fraction + config_.thinkpad_fraction) {
      profile.device = DeviceClass::kThinkpad;
      profile.cpu_hz = 233e6;
      profile.fp_penalty = 1.0;
      profile.power = hw::PowerModel{7.0, 6.0, 2.0};
      profile.weight = 1.0;
      profile.on_battery = true;
      profile.energy_importance = 0.1;
    } else {
      // Modern wall-powered box: fast enough that remote mostly loses.
      profile.device = DeviceClass::kModern;
      profile.cpu_hz = 700e6;
      profile.fp_penalty = 1.0;
      profile.power = hw::PowerModel{7.0, 8.0, 2.0};
      profile.weight = 0.5;
      profile.on_battery = false;
      profile.energy_importance = 0.0;
    }
    name << to_string(profile.device) << "-" << i;
    profile.name = util::intern(name.str());
    profile.rate_scale = crng.noise_factor(0.3);
    profiles_.push_back(profile);

    // Thinned (non-homogeneous) Poisson arrivals: draw at the peak rate,
    // keep each with probability rate(t)/peak — exact for any bounded
    // modulation, and each client's schedule is one pass over its stream.
    const double base = config_.ops_per_client_hz * profile.rate_scale;
    double peak_mult = 1.0 + config_.diurnal_amplitude;
    if (!flash_windows_.empty()) peak_mult *= config_.flash_multiplier;
    const double peak = base * peak_mult;
    util::Seconds t = 0.0;
    while (true) {
      t += -std::log(1.0 - crng.uniform()) / peak;
      if (t >= config_.horizon) break;
      const double rate = base * rate_multiplier(t);
      if (crng.uniform() * peak >= rate) continue;
      FleetOp op;
      op.at = t;
      if (config_.workload == FleetWorkload::kSpeech) {
        // Janus-recognition-shaped: heavier, FP-dominated, larger uploads.
        op.cycles = crng.uniform(150e6, 600e6);
        op.bytes = crng.uniform(40.0_KB, 200.0_KB);
        op.fp_heavy = crng.bernoulli(0.8);
      } else {
        op.cycles = crng.uniform(30e6, 150e6);
        op.bytes = crng.uniform(20.0_KB, 150.0_KB);
        op.fp_heavy = crng.bernoulli(0.3);
      }
      schedule_ops_.push_back(op);
    }
    schedule_off_.push_back(static_cast<std::uint32_t>(schedule_ops_.size()));
  }
}

double FleetScenario::rate_multiplier(util::Seconds t) const {
  double m = 1.0 + config_.diurnal_amplitude *
                       std::sin(2.0 * std::numbers::pi * t /
                                config_.diurnal_period);
  for (const auto& [start, end] : flash_windows_) {
    if (t >= start && t < end) m *= config_.flash_multiplier;
  }
  return std::max(m, 0.0);
}

std::size_t FleetScenario::total_ops() const { return schedule_ops_.size(); }

// -------------------------------------------------------------------- world

void FleetWorld::ClientStore::resize(std::size_t n) {
  next_op.resize(n, 0);
  local_free_at.resize(n, 0.0);
  forced_local_until.resize(n, 0.0);
  run_head.resize(n, -1);
  run_tail.resize(n, -1);
  decisions.resize(n, 0);
  completed.resize(n, 0);
  completed_local.resize(n, 0);
  completed_remote.resize(n, 0);
  rejected.resize(n, 0);
  aborted.resize(n, 0);
  battery_cliffs.resize(n, 0);
  latency_sum_s.resize(n, 0.0);
  slowdown_sum.resize(n, 0.0);
  energy_j.resize(n, 0.0);
}

FleetWorld::FleetWorld(std::shared_ptr<const FleetScenario> scenario,
                       obs::Observability* session)
    : scenario_(std::move(scenario)),
      session_(session),
      plan_(plan_islands(*scenario_)),
      exec_(plan_.islands, plan_.lookahead,
            sim::IslandExecutor::Hooks{
                [this](std::size_t island, util::Seconds target) {
                  island_advance(island, target);
                },
                [this](util::Seconds t) { exchange(t); }}) {
  const obs::MemScope mem_scope(obs::MemScopeId::kFleetWorld);
  const FleetConfig& cfg = scenario_->config();
  store_.resize(cfg.clients);

  // Pool partition: one pool per island, or one per client chunk when a
  // single island fans its decision stage out across chunks. Both are pure
  // functions of the scenario, so every per-pool artifact (and the order
  // pools are drained in) is byte-identical for any --jobs.
  pool_of_.resize(cfg.clients);
  std::size_t npools;
  if (plan_.islands > 1) {
    npools = plan_.islands;
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      pool_of_[c] = plan_.island_of_client[c];
    }
  } else {
    npools = (cfg.clients + kClientChunk - 1) / kClientChunk;
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      // Single-island membership is the identity order, so the chunk of
      // member index c is the chunk of client c.
      pool_of_[c] = static_cast<std::uint32_t>(c / kClientChunk);
    }
  }
  pools_.resize(npools);
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    pools_[pool_of_[c]].op_bound += scenario_->schedule(c).size();
  }
  for (PoolStore& pool : pools_) pool.reserve_bound();

  // In-flight jobs per server are bounded by the admission queue's shape,
  // so the metadata slot table (and its free list) never reallocates.
  const std::size_t meta_bound =
      cfg.admission.queue_bound + cfg.admission.service_slots;
  servers_.reserve(cfg.servers);
  for (std::size_t s = 0; s < cfg.servers; ++s) {
    servers_.emplace_back(cfg.admission);
    servers_.back().meta.reserve(meta_bound);
    servers_.back().free_meta.reserve(meta_bound);
  }
  for (const FleetServerSpec& spec : scenario_->servers()) {
    best_server_hz_ = std::max(best_server_hz_, spec.cpu_hz);
  }

  const std::size_t ticks_per_step =
      static_cast<std::size_t>(plan_.lookahead / cfg.tick) + 2;
  islands_.reserve(plan_.islands);
  arenas_.reserve(plan_.islands);
  for (std::size_t i = 0; i < plan_.islands; ++i) {
    islands_.emplace_back(plan_.servers[i].size());
    islands_.back().tick_transfers.reserve(ticks_per_step);
    arenas_.push_back(std::make_unique<util::Arena>(1 << 16));
  }
  frozen_views_.resize(cfg.servers);
  trace_on_ = session_ != nullptr && session_->tracing();
  if (trace_on_) traces_.resize(cfg.clients);
  if (cfg.fault_plan.has_value()) {
    fault_events_ = fault::expand_plan(*cfg.fault_plan);
    // Stable by time: simultaneous events keep the plan's emission order,
    // the same tie-break the engine-backed injector applies.
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                       return a.at < b.at;
                     });
  }
}

FleetOp FleetWorld::meta_op(const RemoteMeta& meta) {
  FleetOp op;
  op.at = meta.arrived;
  op.cycles = meta.cycles;
  op.bytes = meta.bytes;
  op.fp_heavy = meta.fp_heavy;
  return op;
}

double FleetWorld::ideal_time(std::uint32_t client, const FleetOp& op) const {
  const FleetClientProfile& p = scenario_->profiles()[client];
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const double local = op.cycles * pen / p.cpu_hz;
  const double remote = op.bytes / scenario_->config().bandwidth +
                        scenario_->config().rtt + op.cycles / best_server_hz_;
  return std::min(local, remote);
}

void FleetWorld::run_local(std::uint32_t client, const FleetOp& op,
                           util::Seconds from, bool fallback) {
  const FleetClientProfile& p = scenario_->profiles()[client];
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const util::Seconds exec = op.cycles * pen / p.cpu_hz;
  const util::Seconds start = std::max(store_.local_free_at[client], from);
  LocalRun run;
  run.arrived = op.at;
  run.finish = start + exec;
  run.energy = exec * (p.power.idle_w + p.power.cpu_w) +
               (run.finish - exec - op.at) * p.power.idle_w;
  run.ideal = ideal_time(client, op);
  run.fallback = fallback;
  store_.local_free_at[client] = run.finish;
  PoolStore& pool = pools_[pool_of_[client]];
  const std::int32_t node = pool.alloc_run();
  pool.run_nodes[static_cast<std::size_t>(node)] = {run, -1};
  if (store_.run_tail[client] >= 0) {
    pool.run_nodes[static_cast<std::size_t>(store_.run_tail[client])].next =
        node;
  } else {
    store_.run_head[client] = node;
  }
  store_.run_tail[client] = node;
}

void FleetWorld::complete_local(std::uint32_t client, util::Seconds t1) {
  std::int32_t n = store_.run_head[client];
  if (n < 0) return;
  PoolStore& pool = pools_[pool_of_[client]];
  // Finishes are monotone along the FIFO (local_free_at never runs
  // backwards), so draining the prefix <= t1 is complete.
  while (n >= 0 && pool.run_nodes[static_cast<std::size_t>(n)].run.finish <=
                       t1) {
    const LocalRun run = pool.run_nodes[static_cast<std::size_t>(n)].run;
    const std::int32_t next =
        pool.run_nodes[static_cast<std::size_t>(n)].next;
    pool.free_run(n);
    credit_completion(client, run.arrived, run.finish, run.energy, run.ideal,
                      run.fallback ? -2 : -1);
    n = next;
  }
  store_.run_head[client] = n;
  if (n < 0) store_.run_tail[client] = -1;
}

void FleetWorld::credit_completion(std::uint32_t client, util::Seconds arrived,
                                   util::Seconds finished, util::Joules energy,
                                   util::Seconds ideal, int server) {
  const bool remote = server >= 0;
  const double latency = finished - arrived;
  ++store_.completed[client];
  if (remote) {
    ++store_.completed_remote[client];
  } else {
    ++store_.completed_local[client];
  }
  store_.latency_sum_s[client] += latency;
  pools_[pool_of_[client]].latencies.push_back({client, latency});
  // Slowdown in (0, 1]: best unloaded placement time over achieved time.
  store_.slowdown_sum[client] +=
      latency > 0.0 ? std::min(ideal / latency, 1.0) : 1.0;
  store_.energy_j[client] += energy;
  if (trace_on_) {
    obs::TraceEvent ev("fleet_op", finished);
    ev.field("client", static_cast<std::int64_t>(client))
        .field("mode", remote          ? "remote"
                       : server == -2 ? "fallback"
                                      : "local")
        .field("latency", latency);
    if (remote) ev.field("server", server);
    traces_[client].emit(ev);
  }
}

void FleetWorld::apply_island_faults(std::size_t island, util::Seconds t0,
                                     util::Seconds t1) {
  IslandState& is = islands_[island];
  const std::size_t servers = servers_.size();
  while (is.next_fault < fault_events_.size() &&
         fault_events_[is.next_fault].at < t1) {
    const fault::FaultEvent& e = fault_events_[is.next_fault++];
    // Every island walks the same expanded stream with its own cursor:
    // medium events replicate (identical factors at identical ticks);
    // server/client events apply — and trace — only on the owning island.
    // Faults quantize to the start of the tick containing them.
    bool owned = island == 0;  // medium-wide events trace on island 0
    switch (e.kind) {
      case fault::FaultKind::kServerCrash: {
        const auto s = static_cast<std::size_t>(e.a);
        if (s < servers) owned = plan_.island_of_server[s] == island;
        if (!owned) break;
        if (s >= servers || !servers_[s].up) break;
        servers_[s].up = false;
        std::pmr::vector<core::AdmissionJob> aborted(arenas_[island].get());
        servers_[s].queue.abort_all(&aborted);
        // Fail aborted jobs back to their tenants (queue order): own-island
        // tenants rerun locally from the crash tick, remote tenants learn
        // at the next barrier.
        for (const core::AdmissionJob& job : aborted) {
          const RemoteMeta meta = servers_[s].meta[job.cookie];
          servers_[s].free_meta.push_back(job.cookie);
          if (plan_.island_of_client[meta.client] == island) {
            ++store_.aborted[meta.client];
            run_local(meta.client, meta_op(meta), t0, /*fallback=*/true);
          } else {
            is.out_aborts.push_back({meta.client, meta_op(meta)});
          }
        }
        break;
      }
      case fault::FaultKind::kServerRestart: {
        const auto s = static_cast<std::size_t>(e.a);
        if (s < servers) owned = plan_.island_of_server[s] == island;
        if (owned && s < servers) servers_[s].up = true;
        break;
      }
      case fault::FaultKind::kLatencySpike:
        is.rtt_factor = e.magnitude;
        break;
      case fault::FaultKind::kLatencyRestore:
        is.rtt_factor = 1.0;
        break;
      case fault::FaultKind::kBandwidthDrop:
        is.bandwidth_factor = e.magnitude;
        break;
      case fault::FaultKind::kBandwidthRestore:
        is.bandwidth_factor = 1.0;
        break;
      case fault::FaultKind::kLinkDown:
        is.medium_up = false;
        break;
      case fault::FaultKind::kLinkUp:
        is.medium_up = true;
        break;
      case fault::FaultKind::kLinkFlap:
        SPECTRA_REQUIRE(false, "link_flap must be expanded before apply");
        break;
      case fault::FaultKind::kBatteryCliff: {
        // Charge collapsed on client (a mod clients): the radio goes dark
        // and every decision is forced local until the cliff heals (no
        // duration = the rest of the run). Owned by the client's island.
        if (store_.next_op.empty()) break;
        const std::size_t c =
            static_cast<std::size_t>(e.a) % store_.next_op.size();
        owned = plan_.island_of_client[c] == island;
        if (!owned) break;
        store_.forced_local_until[c] = e.duration > 0.0
                                           ? t0 + e.duration
                                           : scenario_->config().horizon + 1.0;
        ++store_.battery_cliffs[c];
        if (trace_on_) {
          obs::TraceEvent ev("fleet_fault", t0);
          ev.field("kind", fault::to_token(e.kind))
              .field("client", static_cast<std::int64_t>(c))
              .field("until", store_.forced_local_until[c]);
          is.fault_trace.emit(ev);
        }
        break;
      }
    }
    if (trace_on_ && owned && e.kind != fault::FaultKind::kBatteryCliff) {
      obs::TraceEvent ev("fleet_fault", t0);
      ev.field("kind", fault::to_token(e.kind)).field("a", e.a);
      if (e.magnitude != 0.0) ev.field("magnitude", e.magnitude);
      is.fault_trace.emit(ev);
    }
  }
}

void FleetWorld::serve_island(std::size_t island, util::Seconds t0,
                              util::Seconds t1) {
  IslandState& is = islands_[island];
  std::pmr::vector<core::AdmissionCompletion> done_scratch(
      arenas_[island].get());
  for (const std::uint32_t sidx : plan_.servers[island]) {
    ServerState& server = servers_[sidx];
    if (!server.up) continue;
    done_scratch.clear();
    server.queue.advance(t0, t1 - t0, scenario_->servers()[sidx].cpu_hz,
                         &done_scratch);
    for (const core::AdmissionCompletion& done : done_scratch) {
      const RemoteMeta meta = server.meta[done.job.cookie];
      server.free_meta.push_back(done.job.cookie);
      const FleetClientProfile& p = scenario_->profiles()[meta.client];
      const double wait = done.finished_at - meta.arrived - meta.net_time;
      const util::Joules energy =
          meta.net_time * (p.power.idle_w + p.power.net_w) +
          std::max(wait, 0.0) * p.power.idle_w;
      const FleetOp op = meta_op(meta);
      const util::Seconds ideal = ideal_time(meta.client, op);
      if (plan_.island_of_client[meta.client] == island) {
        credit_completion(meta.client, meta.arrived, done.finished_at, energy,
                          ideal, static_cast<int>(sidx));
      } else {
        // Another island's tenant: the credit (pure accounting — remote
        // completions never feed back into that client's decisions) ferries
        // to the barrier.
        is.out_completions.push_back({meta.client, meta.arrived,
                                      done.finished_at, energy, ideal,
                                      static_cast<int>(sidx)});
      }
    }
  }
}

FleetWorld::Decision FleetWorld::decide(std::size_t island,
                                        std::uint32_t client,
                                        const FleetOp& op,
                                        util::Seconds step_end) {
  const FleetClientProfile& p = scenario_->profiles()[client];
  const FleetConfig& cfg = scenario_->config();
  const IslandState& is = islands_[island];

  Decision d;
  d.client = client;
  d.op = op;

  // Local alternative: wait for the local CPU, then execute (with the
  // floating-point penalty when the op is FP-heavy and the device lacks an
  // FPU worth the name).
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const double local_wait =
      std::max(store_.local_free_at[client] - op.at, 0.0);
  const double local_exec = op.cycles * pen / p.cpu_hz;
  const double local_time = local_wait + local_exec;
  const double local_energy =
      local_exec * (p.power.idle_w + p.power.cpu_w) +
      local_wait * p.power.idle_w;
  double best_cost = local_time + p.energy_importance * local_energy;
  d.server = -1;
  d.predicted_s = local_time;

  // A battery-cliffed client keeps its radio dark until the cliff heals.
  if (is.medium_up && store_.forced_local_until[client] <= op.at) {
    // Shared-medium contention: the EWMA of concurrent transfers divides
    // the nominal bandwidth. Every client reads the same frozen estimate
    // between barriers.
    const double sharers =
        std::max(medium_est_.empty() ? 1.0 : medium_est_.value(), 1.0);
    const double bw = cfg.bandwidth * is.bandwidth_factor / sharers;
    const double net_time = op.bytes / bw + cfg.rtt * is.rtt_factor;
    const std::uint32_t sbase = plan_.servers[island].front();
    const std::size_t scount = plan_.servers[island].size();
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const bool own = s >= sbase && s < sbase + scount;
      // Own servers: the island's per-tick published view (the legacy
      // freshness). Remote islands' servers: the view frozen at the last
      // barrier — conservatively stale by at most the lookahead horizon,
      // exactly the staleness a real status poll would carry.
      const monitor::ServerLoadView& view =
          own ? is.board.view(s - sbase) : frozen_views_[s];
      if (!view.up) continue;
      const double hz = scenario_->servers()[s].cpu_hz;
      // Processor sharing: this job would share the CPU with the smoothed
      // run queue the server last published.
      const double exec = op.cycles * (1.0 + view.run_queue) / hz;
      double time = net_time + exec;
      if (!own) {
        // A cross-island job ships at the next barrier; the uplink
        // transfer overlaps the ferry wait, so the job is priced at
        // whichever dominates plus the remote execution.
        const double ferry = std::max(step_end - op.at, 0.0);
        time = std::max(net_time, ferry) + exec;
      }
      const double energy =
          net_time * (p.power.idle_w + p.power.net_w) +
          (time - net_time) * p.power.idle_w;
      const double cost = time + p.energy_importance * energy;
      if (cost < best_cost) {
        best_cost = cost;
        d.server = static_cast<int>(s);
        d.predicted_s = time;
        d.net_time_s = net_time;
      }
    }
  }
  return d;
}

void FleetWorld::island_decisions(std::size_t island, util::Seconds t1) {
  const std::vector<std::uint32_t>& members = plan_.clients[island];
  const util::Seconds step_end = exec_.next_barrier();
  // With one island the islands themselves offer no parallelism, so the
  // decision stage fans out across the pool in fixed client chunks (the
  // legacy shape); with many islands the island is the parallel unit and
  // this stage runs inline on its worker.
  exec::ThreadPool* pool = plan_.islands == 1 ? stage_pool_ : nullptr;
  exec::parallel_for_chunked(
      pool, members.size(), kClientChunk, [&](std::size_t idx) {
        const std::uint32_t client = members[idx];
        PoolStore& ps = pools_[pool_of_[client]];
        complete_local(client, t1);
        const std::span<const FleetOp> sched = scenario_->schedule(client);
        std::uint32_t& cursor = store_.next_op[client];
        while (cursor < sched.size() && sched[cursor].at <= t1) {
          const FleetOp& op = sched[cursor++];
          const double w0 = wall_now_ms();
          Decision d = decide(island, client, op, step_end);
          ps.wall_ms.push_back(wall_now_ms() - w0);
          ++store_.decisions[client];
          if (trace_on_) {
            obs::TraceEvent ev("fleet_decision", op.at);
            ev.field("client", static_cast<std::int64_t>(client))
                .field("target",
                       d.server < 0
                           ? std::string("local")
                           : scenario_->servers()[d.server].name.str())
                .field("predicted", d.predicted_s);
            traces_[client].emit(ev);
          }
          if (d.server < 0) {
            run_local(client, op, op.at, /*fallback=*/false);
          } else {
            ps.decisions.push_back(d);
          }
        }
      });
}

bool FleetWorld::submit_remote(std::uint32_t client, std::size_t server,
                               const FleetOp& op, double net_time_s,
                               util::Seconds reject_from) {
  const FleetClientProfile& p = scenario_->profiles()[client];
  ServerState& ss = servers_[server];
  // Pick the metadata slot the job will carry as its cookie; commit it only
  // if the queue admits (rejected submissions must not leak slots).
  const std::uint32_t slot =
      ss.free_meta.empty() ? static_cast<std::uint32_t>(ss.meta.size())
                           : ss.free_meta.back();
  const auto id = ss.queue.submit(static_cast<int>(client), p.weight,
                                  op.cycles, op.at, slot);
  if (!id.has_value()) {
    ++store_.rejected[client];
    run_local(client, op, reject_from, /*fallback=*/true);
    return false;
  }
  RemoteMeta meta;
  meta.client = client;
  meta.arrived = op.at;
  meta.bytes = op.bytes;
  meta.net_time = net_time_s;
  meta.cycles = op.cycles;
  meta.fp_heavy = op.fp_heavy;
  if (ss.free_meta.empty()) {
    ss.meta.push_back(meta);
  } else {
    ss.free_meta.pop_back();
    ss.meta[slot] = meta;
  }
  return true;
}

void FleetWorld::island_submit(std::size_t island) {
  IslandState& is = islands_[island];
  util::Arena* arena = arenas_[island].get();
  // Gather this island's pool buffers: one pool (the island's own) in the
  // multi-island world, every chunk pool in the single-island one. Either
  // way the concatenation order is ascending client index — the same order
  // the per-client scratch used to be drained in.
  const std::size_t pool_lo = plan_.islands == 1 ? 0 : island;
  const std::size_t pool_hi = plan_.islands == 1 ? pools_.size() : island + 1;
  std::size_t total = 0;
  for (std::size_t p = pool_lo; p < pool_hi; ++p) {
    total += pools_[p].decisions.size();
  }
  std::pmr::vector<const Decision*> gathered(arena);
  gathered.reserve(total);
  for (std::size_t p = pool_lo; p < pool_hi; ++p) {
    for (const Decision& d : pools_[p].decisions) gathered.push_back(&d);
  }
  // Island admission order: arrival time, ties by gather position — an
  // index sort, so it reproduces the stable sort the old per-tick copy ran
  // without the allocation std::stable_sort makes per call.
  std::pmr::vector<std::uint32_t> order(arena);
  order.resize(total);
  for (std::uint32_t i = 0; i < total; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&gathered](std::uint32_t a, std::uint32_t b) {
              const double at_a = gathered[a]->op.at;
              const double at_b = gathered[b]->op.at;
              return at_a != at_b ? at_a < at_b : a < b;
            });
  std::size_t transfers = 0;
  for (const std::uint32_t i : order) {
    const Decision& d = *gathered[i];
    const auto s = static_cast<std::size_t>(d.server);
    if (plan_.island_of_server[s] != static_cast<std::uint32_t>(island)) {
      // Cross-island pick: the uplink transfer starts now (it counts
      // against the shared medium this tick) and the job ferries to the
      // barrier, where the sequential exchange admits it.
      ++transfers;
      is.out_submissions.push_back(
          {d.client, static_cast<std::uint32_t>(s), d.op, d.net_time_s});
      continue;
    }
    if (!is.medium_up || !servers_[s].up) {
      // The world changed between decision and submission (fault applied
      // this tick): fall back to local execution.
      ++store_.rejected[d.client];
      run_local(d.client, d.op, d.op.at, /*fallback=*/true);
      continue;
    }
    if (submit_remote(d.client, s, d.op, d.net_time_s, d.op.at)) ++transfers;
  }
  for (std::size_t p = pool_lo; p < pool_hi; ++p) {
    pools_[p].decisions.clear();
  }
  is.tick_transfers.push_back(transfers);
}

void FleetWorld::publish_island(std::size_t island, util::Seconds t0,
                                util::Seconds t1) {
  IslandState& is = islands_[island];
  const double dt = t1 - t0;
  const std::vector<std::uint32_t>& members = plan_.servers[island];
  for (std::size_t j = 0; j < members.size(); ++j) {
    ServerState& server = servers_[members[j]];
    const double busy = server.queue.busy_time();
    const double util = dt > 0.0 ? (busy - server.busy_last) / dt : 0.0;
    server.busy_last = busy;
    is.board.publish(j, server.queue.run_queue(), util, server.up);
  }
  is.board.flip();
}

void FleetWorld::island_tick(std::size_t island, util::Seconds t0,
                             util::Seconds t1) {
  apply_island_faults(island, t0, t1);
  serve_island(island, t0, t1);
  island_decisions(island, t1);
  island_submit(island);
  publish_island(island, t0, t1);
}

void FleetWorld::island_advance(std::size_t island, util::Seconds target) {
  const obs::MemScope mem_scope(obs::MemScopeId::kFleetTick);
  const util::Seconds tick = scenario_->config().tick;
  IslandState& is = islands_[island];
  while (is.now + 1e-9 < target) {
    const util::Seconds t0 = is.now;
    const util::Seconds t1 = std::min(t0 + tick, target);
    island_tick(island, t0, t1);
    is.now = t1;
    // Recycle the tick's arena scratch. Once warm this is O(1) and
    // heap-free, which is what keeps steady-state ticks allocation-free.
    arenas_[island]->reset();
  }
}

void FleetWorld::fold_medium() {
  const std::size_t ticks =
      islands_.empty() ? 0 : islands_[0].tick_transfers.size();
  for (const IslandState& is : islands_) {
    SPECTRA_REQUIRE(is.tick_transfers.size() == ticks,
                    "islands lost tick lockstep before a barrier fold");
  }
  // Position-wise sum across islands, in tick order: the EWMA sees exactly
  // the per-tick fleet-wide transfer counts a sequential run would feed it.
  for (std::size_t j = 0; j < ticks; ++j) {
    std::size_t total = 0;
    for (const IslandState& is : islands_) total += is.tick_transfers[j];
    medium_est_.add(static_cast<double>(total));
  }
  for (IslandState& is : islands_) is.tick_transfers.clear();
}

void FleetWorld::deliver_mail(util::Seconds t) {
  // Completions first (pure accounting), then crash aborts (rerun locally
  // from the barrier), then ferried submissions — each class drained in
  // island index order, submissions globally re-sorted by (arrival,
  // client) so admission order stays a pure function of the scenario.
  barrier_arena_.reset();
  for (IslandState& is : islands_) {
    for (const CrossCompletion& cc : is.out_completions) {
      credit_completion(cc.client, cc.arrived, cc.finished, cc.energy,
                        cc.ideal, cc.server);
    }
    is.out_completions.clear();
  }
  for (IslandState& is : islands_) {
    for (const CrossAbort& ca : is.out_aborts) {
      ++store_.aborted[ca.client];
      run_local(ca.client, ca.op, t, /*fallback=*/true);
    }
    is.out_aborts.clear();
  }
  std::size_t total = 0;
  for (const IslandState& is : islands_) total += is.out_submissions.size();
  std::pmr::vector<CrossSubmission> mail(&barrier_arena_);
  mail.reserve(total);
  for (IslandState& is : islands_) {
    mail.insert(mail.end(), is.out_submissions.begin(),
                is.out_submissions.end());
    is.out_submissions.clear();
  }
  std::sort(mail.begin(), mail.end(),
            [](const CrossSubmission& a, const CrossSubmission& b) {
              return a.op.at != b.op.at ? a.op.at < b.op.at
                                        : a.client < b.client;
            });
  cross_submissions_ += mail.size();
  for (const CrossSubmission& cs : mail) {
    if (!barrier_medium_up_ || !servers_[cs.server].up) {
      // The medium partitioned or the target crashed while the job was on
      // the wire: fall back to local execution from the barrier.
      ++store_.rejected[cs.client];
      run_local(cs.client, cs.op, t, /*fallback=*/true);
      continue;
    }
    submit_remote(cs.client, cs.server, cs.op, cs.net_time_s, t);
  }
}

void FleetWorld::exchange(util::Seconds t) {
  const obs::MemScope mem_scope(obs::MemScopeId::kFleetTick);
  fold_medium();
  // World-level medium availability at barrier time, for admitting ferried
  // submissions (its own cursor over the same expanded link events).
  while (barrier_fault_cursor_ < fault_events_.size() &&
         fault_events_[barrier_fault_cursor_].at < t) {
    const fault::FaultEvent& e = fault_events_[barrier_fault_cursor_++];
    if (e.kind == fault::FaultKind::kLinkDown) barrier_medium_up_ = false;
    if (e.kind == fault::FaultKind::kLinkUp) barrier_medium_up_ = true;
  }
  deliver_mail(t);
  // Refreeze cross-island load views for the next super-step.
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    islands_[i].board.snapshot_into(frozen_views_, plan_.servers[i].front());
  }
}

void FleetWorld::run_until(util::Seconds until, exec::ThreadPool* pool) {
  until = std::min(until, scenario_->config().horizon);
  stage_pool_ = pool;
  const double w0 = wall_now_ms();
  exec_.run_until(until, pool);
  wall_seconds_ += (wall_now_ms() - w0) / 1e3;
  stage_pool_ = nullptr;
}

std::uint64_t FleetWorld::state_fingerprint() const {
  std::uint64_t h = util::kFnvOffset;
  const std::size_t nclients = store_.next_op.size();
  for (std::size_t c = 0; c < nclients; ++c) {
    // Field order is the fingerprint contract; the 32-bit counters widen
    // back to the 64-bit values the old per-client structs folded.
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.decisions[c]));
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.completed[c]));
    h = util::fnv_mix(h,
                      static_cast<std::uint64_t>(store_.completed_local[c]));
    h = util::fnv_mix(h,
                      static_cast<std::uint64_t>(store_.completed_remote[c]));
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.rejected[c]));
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.aborted[c]));
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.battery_cliffs[c]));
    h = util::fnv_mix(h, store_.forced_local_until[c]);
    h = util::fnv_mix(h, static_cast<std::uint64_t>(store_.next_op[c]));
    h = util::fnv_mix(h, store_.latency_sum_s[c]);
    h = util::fnv_mix(h, store_.slowdown_sum[c]);
    h = util::fnv_mix(h, store_.energy_j[c]);
    h = util::fnv_mix(h, store_.local_free_at[c]);
    std::uint64_t queued = 0;
    const PoolStore& pool = pools_[pool_of_[c]];
    for (std::int32_t n = store_.run_head[c]; n >= 0;
         n = pool.run_nodes[static_cast<std::size_t>(n)].next) {
      ++queued;
    }
    h = util::fnv_mix(h, queued);
  }
  for (const ServerState& server : servers_) {
    h = server.queue.fingerprint(h);
    h = util::fnv_mix(h, static_cast<std::uint64_t>(server.up ? 1 : 0));
  }
  h = util::fnv_mix(h, exec_.now());
  h = util::fnv_mix(h, medium_est_.empty() ? -1.0 : medium_est_.value());
  return h;
}

std::unique_ptr<FleetWorld> FleetWorld::clone(obs::Observability* obs) const {
  auto copy = std::make_unique<FleetWorld>(scenario_, obs);
  const obs::MemScope mem_scope(obs::MemScopeId::kFleetWorld);
  copy->store_ = store_;
  copy->pools_ = pools_;
  // Vector copies keep contents but not spare capacity; re-reserve so the
  // clone's steady-state ticks stay allocation-free too.
  for (PoolStore& pool : copy->pools_) pool.reserve_bound();
  copy->servers_ = servers_;
  const core::AdmissionConfig& adm = scenario_->config().admission;
  const std::size_t meta_bound = adm.queue_bound + adm.service_slots;
  for (ServerState& server : copy->servers_) {
    server.meta.reserve(meta_bound);
    server.free_meta.reserve(meta_bound);
  }
  copy->islands_ = islands_;
  copy->frozen_views_ = frozen_views_;
  copy->medium_est_ = medium_est_;
  copy->barrier_medium_up_ = barrier_medium_up_;
  copy->barrier_fault_cursor_ = barrier_fault_cursor_;
  copy->cross_submissions_ = cross_submissions_;
  copy->exec_.copy_state_from(exec_);
  // Tracing follows the new session, but the shard buffers carry over, so
  // the clone's merged trace equals an uncloned full run's. (A tracing
  // clone of a non-tracing world keeps the fresh empty shards its
  // constructor sized.)
  if (copy->trace_on_ && !traces_.empty()) {
    copy->traces_ = traces_;
  }
  if (!copy->trace_on_) {
    for (IslandState& is : copy->islands_) is.fault_trace.clear();
  }
  return copy;
}

FleetReport FleetWorld::finish(exec::ThreadPool* pool) {
  if (finished_) return report_;
  const FleetConfig& cfg = scenario_->config();
  run_until(cfg.horizon, pool);
  // Horizon settlement: fold the trailing ticks' medium counts and deliver
  // the outstanding cross-island mail — completions that finished before
  // the horizon are credited, crash aborts rerun locally, and ferried
  // submissions land in their queue (and stay in flight, matching the
  // treatment of jobs queued at the horizon).
  fold_medium();
  while (barrier_fault_cursor_ < fault_events_.size() &&
         fault_events_[barrier_fault_cursor_].at < exec_.now()) {
    const fault::FaultEvent& e = fault_events_[barrier_fault_cursor_++];
    if (e.kind == fault::FaultKind::kLinkDown) barrier_medium_up_ = false;
    if (e.kind == fault::FaultKind::kLinkUp) barrier_medium_up_ = true;
  }
  deliver_mail(exec_.now());
  finished_ = true;

  FleetReport r;
  r.clients = cfg.clients;
  r.servers = cfg.servers;
  r.policy = cfg.admission.policy;
  r.horizon = cfg.horizon;
  r.islands = plan_.islands;
  r.lookahead_s = plan_.lookahead;
  r.virtual_end = exec_.now();
  r.ops_cross_island = cross_submissions_;

  const std::size_t nclients = store_.next_op.size();
  std::vector<double> slowdowns;
  std::vector<double> wall_ms;
  for (std::size_t c = 0; c < nclients; ++c) {
    r.decisions += store_.decisions[c];
    r.ops_completed += store_.completed[c];
    r.ops_local += store_.completed_local[c];
    r.ops_remote += store_.completed_remote[c];
    r.ops_rejected += store_.rejected[c];
    r.ops_aborted += store_.aborted[c];
    r.battery_cliffs += store_.battery_cliffs[c];
    r.aggregate_energy_j += store_.energy_j[c];
    if (store_.completed[c] > 0) {
      slowdowns.push_back(store_.slowdown_sum[c] /
                          static_cast<double>(store_.completed[c]));
    }
  }
  // Rebuild the global latency stream in per-client, per-client-
  // chronological order — the order the per-client vectors used to
  // concatenate in, so means, percentiles, and histogram folds are
  // byte-identical. Each client's samples live in one pool in credit
  // (chronological) order; a stable sort by client is exactly that merge.
  std::vector<LatSample> samples;
  std::size_t nsamples = 0;
  for (const PoolStore& pool : pools_) nsamples += pool.latencies.size();
  samples.reserve(nsamples);
  for (const PoolStore& pool : pools_) {
    samples.insert(samples.end(), pool.latencies.begin(),
                   pool.latencies.end());
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [](const LatSample& a, const LatSample& b) {
                     return a.client < b.client;
                   });
  std::vector<double> latencies;
  latencies.reserve(samples.size());
  for (const LatSample& s : samples) latencies.push_back(s.latency_s);
  for (const PoolStore& pool : pools_) {
    wall_ms.insert(wall_ms.end(), pool.wall_ms.begin(), pool.wall_ms.end());
  }
  if (!latencies.empty()) {
    r.latency_mean_s = util::mean_of(latencies);
    r.latency_p50_s = util::percentile_value(latencies, 50.0);
    r.latency_p99_s = util::percentile_value(latencies, 99.0);
  }
  // Jain's fairness index over per-client mean slowdown: 1.0 when every
  // client gets the same relative service, 1/n when one client gets it all.
  if (!slowdowns.empty()) {
    double sum = 0.0;
    double sq = 0.0;
    for (double x : slowdowns) {
      sum += x;
      sq += x * x;
    }
    r.jain_fairness =
        sq > 0.0 ? (sum * sum) / (static_cast<double>(slowdowns.size()) * sq)
                 : 0.0;
  }
  double util_sum = 0.0;
  double util_min = 1.0;
  double util_max = 0.0;
  const util::Seconds now = exec_.now();
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const FleetServerSpec& spec = scenario_->servers()[s];
    const double busy = servers_[s].queue.busy_time();
    const double busy_frac = now > 0.0 ? busy / now : 0.0;
    util_sum += busy_frac;
    util_min = std::min(util_min, busy_frac);
    util_max = std::max(util_max, busy_frac);
    r.aggregate_energy_j +=
        busy * (spec.power.idle_w + spec.power.cpu_w) +
        (now - busy) * spec.power.idle_w;
  }
  r.server_utilization_mean = util_sum / static_cast<double>(servers_.size());
  r.server_utilization_min = util_min;
  r.server_utilization_max = util_max;
  r.fingerprint = state_fingerprint();

  r.wall_seconds = wall_seconds_;
  if (!wall_ms.empty()) {
    r.decision_wall_p50_ms = util::percentile_value(wall_ms, 50.0);
    r.decision_wall_p99_ms = util::percentile_value(wall_ms, 99.0);
  }
  if (wall_seconds_ > 0.0) {
    r.decisions_per_wall_sec =
        static_cast<double>(r.decisions) / wall_seconds_;
    r.events_per_wall_sec =
        static_cast<double>(r.decisions + r.ops_completed) / wall_seconds_;
  }

  if (session_ != nullptr) {
    obs::MetricsRegistry& m = session_->metrics();
    m.counter("fleet.decisions").add(static_cast<double>(r.decisions));
    m.counter("fleet.ops.completed").add(static_cast<double>(r.ops_completed));
    m.counter("fleet.ops.local").add(static_cast<double>(r.ops_local));
    m.counter("fleet.ops.remote").add(static_cast<double>(r.ops_remote));
    m.counter("fleet.ops.rejected").add(static_cast<double>(r.ops_rejected));
    m.counter("fleet.ops.aborted").add(static_cast<double>(r.ops_aborted));
    // Conditional so cliff-free / single-island runs keep their metrics
    // goldens byte-identical.
    if (r.battery_cliffs > 0) {
      m.counter("fleet.battery_cliffs")
          .add(static_cast<double>(r.battery_cliffs));
    }
    if (r.ops_cross_island > 0) {
      m.counter("fleet.ops.cross_island")
          .add(static_cast<double>(r.ops_cross_island));
    }
    m.counter("fleet.energy_j").add(r.aggregate_energy_j);
    m.counter("fleet.jain_fairness").add(r.jain_fairness);
    obs::Histogram& lat = m.histogram("fleet.op.latency_s");
    for (double x : latencies) lat.observe(x);
    obs::Histogram& util_hist = m.histogram("fleet.server.utilization");
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      util_hist.observe(now > 0.0 ? servers_[s].queue.busy_time() / now
                                  : 0.0);
    }
    // Wall-clock metrics carry the ".wall_ms" suffix so determinism checks
    // and goldens can strip them.
    obs::Histogram& wall = m.histogram("fleet.decision.wall_ms");
    for (double x : wall_ms) wall.observe(x);
    m.histogram("fleet.run.wall_ms").observe(wall_seconds_ * 1e3);
    if (session_->tracing()) {
      // Island decomposition header (multi-island runs only, so legacy
      // single-island goldens keep their bytes), then per-island fault
      // shards and per-client shards in index order — the same
      // deterministic merge discipline BatchRunner uses.
      if (plan_.islands > 1) {
        obs::TraceEvent header("fleet_islands", 0.0);
        header.field("islands", static_cast<std::int64_t>(plan_.islands))
            .field("lookahead", plan_.lookahead);
        session_->trace()->emit(header);
      }
      for (const IslandState& is : islands_) {
        session_->trace()->write_raw(is.fault_trace.bytes());
      }
      for (const obs::TraceShard& shard : traces_) {
        session_->trace()->write_raw(shard.bytes());
      }
      obs::TraceEvent summary("fleet_summary", now);
      summary.field("clients", static_cast<std::int64_t>(r.clients))
          .field("completed", static_cast<std::int64_t>(r.ops_completed))
          .field("remote", static_cast<std::int64_t>(r.ops_remote))
          .field("rejected", static_cast<std::int64_t>(r.ops_rejected))
          .field("p99_latency", r.latency_p99_s)
          .field("jain", r.jain_fairness);
      session_->trace()->emit(summary);
    }
  }

  report_ = r;
  return report_;
}

// ------------------------------------------------------------------- report

std::string FleetReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"clients\": " << clients << ",\n";
  os << "  \"servers\": " << servers << ",\n";
  os << "  \"islands\": " << islands << ",\n";
  os << "  \"lookahead_s\": " << obs::format_double(lookahead_s) << ",\n";
  os << "  \"policy\": \"" << core::to_string(policy) << "\",\n";
  os << "  \"horizon_s\": " << obs::format_double(horizon) << ",\n";
  os << "  \"decisions\": " << decisions << ",\n";
  os << "  \"ops_completed\": " << ops_completed << ",\n";
  os << "  \"ops_local\": " << ops_local << ",\n";
  os << "  \"ops_remote\": " << ops_remote << ",\n";
  os << "  \"ops_rejected\": " << ops_rejected << ",\n";
  os << "  \"ops_aborted\": " << ops_aborted << ",\n";
  os << "  \"ops_cross_island\": " << ops_cross_island << ",\n";
  os << "  \"battery_cliffs\": " << battery_cliffs << ",\n";
  os << "  \"latency_p50_s\": " << obs::format_double(latency_p50_s) << ",\n";
  os << "  \"latency_p99_s\": " << obs::format_double(latency_p99_s) << ",\n";
  os << "  \"latency_mean_s\": " << obs::format_double(latency_mean_s)
     << ",\n";
  os << "  \"server_utilization_mean\": "
     << obs::format_double(server_utilization_mean) << ",\n";
  os << "  \"server_utilization_min\": "
     << obs::format_double(server_utilization_min) << ",\n";
  os << "  \"server_utilization_max\": "
     << obs::format_double(server_utilization_max) << ",\n";
  os << "  \"aggregate_energy_j\": "
     << obs::format_double(aggregate_energy_j) << ",\n";
  os << "  \"jain_fairness\": " << obs::format_double(jain_fairness) << ",\n";
  os << "  \"virtual_end_s\": " << obs::format_double(virtual_end) << ",\n";
  os << "  \"fingerprint\": \"" << std::hex << fingerprint << std::dec
     << "\",\n";
  os << "  \"wall\": {\n";
  os << "    \"seconds\": " << obs::format_double(wall_seconds) << ",\n";
  os << "    \"decision_p50_ms\": "
     << obs::format_double(decision_wall_p50_ms) << ",\n";
  os << "    \"decision_p99_ms\": "
     << obs::format_double(decision_wall_p99_ms) << ",\n";
  os << "    \"decisions_per_sec\": "
     << obs::format_double(decisions_per_wall_sec) << ",\n";
  os << "    \"events_per_sec\": "
     << obs::format_double(events_per_wall_sec) << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

FleetReport run_fleet(const FleetConfig& config, std::size_t jobs,
                      obs::Observability* session) {
  auto scenario = std::make_shared<FleetScenario>(config);
  FleetWorld world(std::move(scenario), session);
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<exec::ThreadPool>(jobs);
  return world.finish(pool.get());
}

}  // namespace spectra::scenario
