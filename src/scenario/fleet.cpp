#include "scenario/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/assert.h"
#include "util/fnv.h"
#include "util/rng.h"
#include "util/shutdown.h"

namespace spectra::scenario {

using namespace util;  // NOLINT: unit literals (_KB, _MB)

namespace {

// Clients are processed in fixed chunks of this many per pool task, so the
// work partition (and thus every per-client artifact) is independent of the
// worker count.
constexpr std::size_t kClientChunk = 64;

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ----------------------------------------------------------------- scenario

const char* to_string(DeviceClass device) {
  switch (device) {
    case DeviceClass::kItsy: return "itsy";
    case DeviceClass::kThinkpad: return "thinkpad";
    case DeviceClass::kModern: return "modern";
  }
  return "unknown";
}

const char* to_string(FleetWorkload workload) {
  switch (workload) {
    case FleetWorkload::kMixed: return "mixed";
    case FleetWorkload::kSpeech: return "speech";
  }
  return "unknown";
}

FleetScenario::FleetScenario(FleetConfig config) : config_(config) {
  SPECTRA_REQUIRE(config_.clients >= 1, "fleet needs at least one client");
  SPECTRA_REQUIRE(config_.servers >= 1, "fleet needs at least one server");
  SPECTRA_REQUIRE(config_.tick > 0.0, "fleet tick must be positive");
  SPECTRA_REQUIRE(config_.horizon > 0.0, "fleet horizon must be positive");
  SPECTRA_REQUIRE(config_.bandwidth > 0.0, "fleet bandwidth must be positive");
  SPECTRA_REQUIRE(config_.lookahead >= 0.0,
                  "fleet lookahead must be non-negative");
  SPECTRA_REQUIRE(config_.itsy_fraction >= 0.0 &&
                      config_.thinkpad_fraction >= 0.0 &&
                      config_.itsy_fraction + config_.thinkpad_fraction <= 1.0,
                  "device mix fractions must be a sub-probability");

  // Pool servers alternate the paper's two server classes (400 MHz vs
  // 933 MHz), so placement has a real speed/contention trade to make.
  servers_.reserve(config_.servers);
  for (std::size_t s = 0; s < config_.servers; ++s) {
    FleetServerSpec spec;
    std::ostringstream name;
    name << "server-" << s;
    spec.name = util::intern(name.str());
    if (s % 2 == 0) {
      spec.cpu_hz = 400e6;
      spec.power = hw::PowerModel{20.0, 10.0, 2.0};
    } else {
      spec.cpu_hz = 933e6;
      spec.power = hw::PowerModel{25.0, 15.0, 2.0};
    }
    servers_.push_back(spec);
  }

  util::Rng rng(config_.seed);

  // Flash crowds: seeded windows in the middle of the run where the arrival
  // rate multiplies fleet-wide. Drawn before the per-client streams so the
  // windows are a function of (seed, flash config) alone.
  for (int k = 0; k < config_.flash_crowds; ++k) {
    const util::Seconds start =
        rng.uniform(0.1, 0.8) * config_.horizon;
    flash_windows_.emplace_back(start, start + config_.flash_duration);
  }

  profiles_.reserve(config_.clients);
  schedules_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    // Each client gets a forked stream: its profile and schedule are
    // independent of how many draws any other client consumed.
    util::Rng crng = rng.fork();

    FleetClientProfile profile;
    const double mix = crng.uniform();
    std::ostringstream name;
    if (mix < config_.itsy_fraction) {
      // Itsy-class handheld: slow, software floating point, tiny battery —
      // remote execution is its lifeline, so it gets the largest fair-share
      // weight and cares most about energy.
      profile.device = DeviceClass::kItsy;
      profile.cpu_hz = 206e6;
      profile.fp_penalty = 3.0;
      profile.power = hw::PowerModel{0.15, 1.55, 0.35};
      profile.weight = 2.0;
      profile.on_battery = true;
      profile.energy_importance = 0.8;
    } else if (mix < config_.itsy_fraction + config_.thinkpad_fraction) {
      profile.device = DeviceClass::kThinkpad;
      profile.cpu_hz = 233e6;
      profile.fp_penalty = 1.0;
      profile.power = hw::PowerModel{7.0, 6.0, 2.0};
      profile.weight = 1.0;
      profile.on_battery = true;
      profile.energy_importance = 0.1;
    } else {
      // Modern wall-powered box: fast enough that remote mostly loses.
      profile.device = DeviceClass::kModern;
      profile.cpu_hz = 700e6;
      profile.fp_penalty = 1.0;
      profile.power = hw::PowerModel{7.0, 8.0, 2.0};
      profile.weight = 0.5;
      profile.on_battery = false;
      profile.energy_importance = 0.0;
    }
    name << to_string(profile.device) << "-" << i;
    profile.name = util::intern(name.str());
    profile.rate_scale = crng.noise_factor(0.3);
    profiles_.push_back(profile);

    // Thinned (non-homogeneous) Poisson arrivals: draw at the peak rate,
    // keep each with probability rate(t)/peak — exact for any bounded
    // modulation, and each client's schedule is one pass over its stream.
    const double base = config_.ops_per_client_hz * profile.rate_scale;
    double peak_mult = 1.0 + config_.diurnal_amplitude;
    if (!flash_windows_.empty()) peak_mult *= config_.flash_multiplier;
    const double peak = base * peak_mult;
    std::vector<FleetOp> ops;
    util::Seconds t = 0.0;
    while (true) {
      t += -std::log(1.0 - crng.uniform()) / peak;
      if (t >= config_.horizon) break;
      const double rate = base * rate_multiplier(t);
      if (crng.uniform() * peak >= rate) continue;
      FleetOp op;
      op.at = t;
      if (config_.workload == FleetWorkload::kSpeech) {
        // Janus-recognition-shaped: heavier, FP-dominated, larger uploads.
        op.cycles = crng.uniform(150e6, 600e6);
        op.bytes = crng.uniform(40.0_KB, 200.0_KB);
        op.fp_heavy = crng.bernoulli(0.8);
      } else {
        op.cycles = crng.uniform(30e6, 150e6);
        op.bytes = crng.uniform(20.0_KB, 150.0_KB);
        op.fp_heavy = crng.bernoulli(0.3);
      }
      ops.push_back(op);
    }
    schedules_.push_back(std::move(ops));
  }
}

double FleetScenario::rate_multiplier(util::Seconds t) const {
  double m = 1.0 + config_.diurnal_amplitude *
                       std::sin(2.0 * std::numbers::pi * t /
                                config_.diurnal_period);
  for (const auto& [start, end] : flash_windows_) {
    if (t >= start && t < end) m *= config_.flash_multiplier;
  }
  return std::max(m, 0.0);
}

std::size_t FleetScenario::total_ops() const {
  std::size_t n = 0;
  for (const auto& s : schedules_) n += s.size();
  return n;
}

// -------------------------------------------------------------------- world

FleetWorld::FleetWorld(std::shared_ptr<const FleetScenario> scenario,
                       obs::Observability* session)
    : scenario_(std::move(scenario)),
      session_(session),
      plan_(plan_islands(*scenario_)),
      exec_(plan_.islands, plan_.lookahead,
            sim::IslandExecutor::Hooks{
                [this](std::size_t island, util::Seconds target) {
                  island_advance(island, target);
                },
                [this](util::Seconds t) { exchange(t); }}) {
  const FleetConfig& cfg = scenario_->config();
  clients_.resize(cfg.clients);
  decision_scratch_.resize(cfg.clients);
  servers_.reserve(cfg.servers);
  for (std::size_t s = 0; s < cfg.servers; ++s) {
    servers_.emplace_back(cfg.admission);
  }
  islands_.reserve(plan_.islands);
  for (std::size_t i = 0; i < plan_.islands; ++i) {
    islands_.emplace_back(plan_.servers[i].size());
  }
  frozen_views_.resize(cfg.servers);
  trace_on_ = session_ != nullptr && session_->tracing();
  if (cfg.fault_plan.has_value()) {
    fault_events_ = fault::expand_plan(*cfg.fault_plan);
    // Stable by time: simultaneous events keep the plan's emission order,
    // the same tie-break the engine-backed injector applies.
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                       return a.at < b.at;
                     });
  }
}

FleetOp FleetWorld::meta_op(const RemoteMeta& meta) {
  FleetOp op;
  op.at = meta.arrived;
  op.cycles = meta.cycles;
  op.bytes = meta.bytes;
  op.fp_heavy = meta.fp_heavy;
  return op;
}

double FleetWorld::ideal_time(std::uint32_t client, const FleetOp& op) const {
  const FleetClientProfile& p = scenario_->profiles()[client];
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const double local = op.cycles * pen / p.cpu_hz;
  double best_hz = 0.0;
  for (const auto& s : scenario_->servers()) best_hz = std::max(best_hz, s.cpu_hz);
  const double remote = op.bytes / scenario_->config().bandwidth +
                        scenario_->config().rtt + op.cycles / best_hz;
  return std::min(local, remote);
}

void FleetWorld::run_local(std::uint32_t client, const FleetOp& op,
                           util::Seconds from, bool fallback) {
  ClientState& st = clients_[client];
  const FleetClientProfile& p = scenario_->profiles()[client];
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const util::Seconds exec = op.cycles * pen / p.cpu_hz;
  const util::Seconds start = std::max(st.local_free_at, from);
  LocalRun run;
  run.arrived = op.at;
  run.finish = start + exec;
  run.energy = exec * (p.power.idle_w + p.power.cpu_w) +
               (run.finish - exec - op.at) * p.power.idle_w;
  run.ideal = ideal_time(client, op);
  run.fallback = fallback;
  st.local_free_at = run.finish;
  st.local_runs.push_back(run);
}

void FleetWorld::complete_local(std::uint32_t client, util::Seconds t1) {
  ClientState& st = clients_[client];
  std::size_t done = 0;
  while (done < st.local_runs.size() && st.local_runs[done].finish <= t1) {
    const LocalRun& run = st.local_runs[done];
    credit_completion(client, run.arrived, run.finish, run.energy, run.ideal,
                      run.fallback ? -2 : -1);
    ++done;
  }
  if (done > 0) {
    st.local_runs.erase(st.local_runs.begin(),
                        st.local_runs.begin() + static_cast<std::ptrdiff_t>(done));
  }
}

void FleetWorld::credit_completion(std::uint32_t client, util::Seconds arrived,
                                   util::Seconds finished, util::Joules energy,
                                   util::Seconds ideal, int server) {
  ClientState& st = clients_[client];
  const bool remote = server >= 0;
  const double latency = finished - arrived;
  ++st.completed;
  if (remote) {
    ++st.completed_remote;
  } else {
    ++st.completed_local;
  }
  st.latency_sum_s += latency;
  st.latencies_s.push_back(latency);
  // Slowdown in (0, 1]: best unloaded placement time over achieved time.
  st.slowdown_sum += latency > 0.0 ? std::min(ideal / latency, 1.0) : 1.0;
  st.energy_j += energy;
  if (trace_on_) {
    obs::TraceEvent ev("fleet_op", finished);
    ev.field("client", static_cast<std::int64_t>(client))
        .field("mode", remote          ? "remote"
                       : server == -2 ? "fallback"
                                      : "local")
        .field("latency", latency);
    if (remote) ev.field("server", server);
    st.trace.emit(ev);
  }
}

void FleetWorld::apply_island_faults(std::size_t island, util::Seconds t0,
                                     util::Seconds t1) {
  IslandState& is = islands_[island];
  const std::size_t servers = servers_.size();
  while (is.next_fault < fault_events_.size() &&
         fault_events_[is.next_fault].at < t1) {
    const fault::FaultEvent& e = fault_events_[is.next_fault++];
    // Every island walks the same expanded stream with its own cursor:
    // medium events replicate (identical factors at identical ticks);
    // server/client events apply — and trace — only on the owning island.
    // Faults quantize to the start of the tick containing them.
    bool owned = island == 0;  // medium-wide events trace on island 0
    switch (e.kind) {
      case fault::FaultKind::kServerCrash: {
        const auto s = static_cast<std::size_t>(e.a);
        if (s < servers) owned = plan_.island_of_server[s] == island;
        if (!owned) break;
        if (s >= servers || !servers_[s].up) break;
        servers_[s].up = false;
        is.aborted_scratch.clear();
        servers_[s].queue.abort_all(&is.aborted_scratch);
        // Fail aborted jobs back to their tenants (queue order): own-island
        // tenants rerun locally from the crash tick, remote tenants learn
        // at the next barrier.
        for (const core::AdmissionJob& job : is.aborted_scratch) {
          const RemoteMeta& meta = servers_[s].meta[job.id - 1];
          if (plan_.island_of_client[meta.client] == island) {
            ClientState& st = clients_[meta.client];
            ++st.aborted;
            run_local(meta.client, meta_op(meta), t0, /*fallback=*/true);
          } else {
            is.out_aborts.push_back({meta.client, meta_op(meta)});
          }
        }
        break;
      }
      case fault::FaultKind::kServerRestart: {
        const auto s = static_cast<std::size_t>(e.a);
        if (s < servers) owned = plan_.island_of_server[s] == island;
        if (owned && s < servers) servers_[s].up = true;
        break;
      }
      case fault::FaultKind::kLatencySpike:
        is.rtt_factor = e.magnitude;
        break;
      case fault::FaultKind::kLatencyRestore:
        is.rtt_factor = 1.0;
        break;
      case fault::FaultKind::kBandwidthDrop:
        is.bandwidth_factor = e.magnitude;
        break;
      case fault::FaultKind::kBandwidthRestore:
        is.bandwidth_factor = 1.0;
        break;
      case fault::FaultKind::kLinkDown:
        is.medium_up = false;
        break;
      case fault::FaultKind::kLinkUp:
        is.medium_up = true;
        break;
      case fault::FaultKind::kLinkFlap:
        SPECTRA_REQUIRE(false, "link_flap must be expanded before apply");
        break;
      case fault::FaultKind::kBatteryCliff: {
        // Charge collapsed on client (a mod clients): the radio goes dark
        // and every decision is forced local until the cliff heals (no
        // duration = the rest of the run). Owned by the client's island.
        if (clients_.empty()) break;
        const std::size_t c =
            static_cast<std::size_t>(e.a) % clients_.size();
        owned = plan_.island_of_client[c] == island;
        if (!owned) break;
        ClientState& st = clients_[c];
        st.forced_local_until = e.duration > 0.0
                                    ? t0 + e.duration
                                    : scenario_->config().horizon + 1.0;
        ++st.battery_cliffs;
        if (trace_on_) {
          obs::TraceEvent ev("fleet_fault", t0);
          ev.field("kind", fault::to_token(e.kind))
              .field("client", static_cast<std::int64_t>(c))
              .field("until", st.forced_local_until);
          is.fault_trace.emit(ev);
        }
        break;
      }
    }
    if (trace_on_ && owned && e.kind != fault::FaultKind::kBatteryCliff) {
      obs::TraceEvent ev("fleet_fault", t0);
      ev.field("kind", fault::to_token(e.kind)).field("a", e.a);
      if (e.magnitude != 0.0) ev.field("magnitude", e.magnitude);
      is.fault_trace.emit(ev);
    }
  }
}

void FleetWorld::serve_island(std::size_t island, util::Seconds t0,
                              util::Seconds t1) {
  IslandState& is = islands_[island];
  for (const std::uint32_t sidx : plan_.servers[island]) {
    ServerState& server = servers_[sidx];
    if (!server.up) continue;
    is.completions_scratch.clear();
    server.queue.advance(t0, t1 - t0, scenario_->servers()[sidx].cpu_hz,
                         &is.completions_scratch);
    for (const core::AdmissionCompletion& done : is.completions_scratch) {
      const RemoteMeta& meta = server.meta[done.job.id - 1];
      const FleetClientProfile& p = scenario_->profiles()[meta.client];
      const double wait = done.finished_at - meta.arrived - meta.net_time;
      const util::Joules energy =
          meta.net_time * (p.power.idle_w + p.power.net_w) +
          std::max(wait, 0.0) * p.power.idle_w;
      const FleetOp op = meta_op(meta);
      const util::Seconds ideal = ideal_time(meta.client, op);
      if (plan_.island_of_client[meta.client] == island) {
        credit_completion(meta.client, meta.arrived, done.finished_at, energy,
                          ideal, static_cast<int>(sidx));
      } else {
        // Another island's tenant: the credit (pure accounting — remote
        // completions never feed back into that client's decisions) ferries
        // to the barrier.
        is.out_completions.push_back({meta.client, meta.arrived,
                                      done.finished_at, energy, ideal,
                                      static_cast<int>(sidx)});
      }
    }
  }
}

FleetWorld::Decision FleetWorld::decide(std::size_t island,
                                        std::uint32_t client,
                                        const FleetOp& op,
                                        util::Seconds step_end) {
  const FleetClientProfile& p = scenario_->profiles()[client];
  const ClientState& st = clients_[client];
  const FleetConfig& cfg = scenario_->config();
  const IslandState& is = islands_[island];

  Decision d;
  d.client = client;
  d.op = op;

  // Local alternative: wait for the local CPU, then execute (with the
  // floating-point penalty when the op is FP-heavy and the device lacks an
  // FPU worth the name).
  const double pen = op.fp_heavy ? p.fp_penalty : 1.0;
  const double local_wait = std::max(st.local_free_at - op.at, 0.0);
  const double local_exec = op.cycles * pen / p.cpu_hz;
  const double local_time = local_wait + local_exec;
  const double local_energy =
      local_exec * (p.power.idle_w + p.power.cpu_w) +
      local_wait * p.power.idle_w;
  double best_cost = local_time + p.energy_importance * local_energy;
  d.server = -1;
  d.predicted_s = local_time;

  // A battery-cliffed client keeps its radio dark until the cliff heals.
  if (is.medium_up && st.forced_local_until <= op.at) {
    // Shared-medium contention: the EWMA of concurrent transfers divides
    // the nominal bandwidth. Every client reads the same frozen estimate
    // between barriers.
    const double sharers =
        std::max(medium_est_.empty() ? 1.0 : medium_est_.value(), 1.0);
    const double bw = cfg.bandwidth * is.bandwidth_factor / sharers;
    const double net_time = op.bytes / bw + cfg.rtt * is.rtt_factor;
    const std::uint32_t sbase = plan_.servers[island].front();
    const std::size_t scount = plan_.servers[island].size();
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const bool own = s >= sbase && s < sbase + scount;
      // Own servers: the island's per-tick published view (the legacy
      // freshness). Remote islands' servers: the view frozen at the last
      // barrier — conservatively stale by at most the lookahead horizon,
      // exactly the staleness a real status poll would carry.
      const monitor::ServerLoadView& view =
          own ? is.board.view(s - sbase) : frozen_views_[s];
      if (!view.up) continue;
      const double hz = scenario_->servers()[s].cpu_hz;
      // Processor sharing: this job would share the CPU with the smoothed
      // run queue the server last published.
      const double exec = op.cycles * (1.0 + view.run_queue) / hz;
      double time = net_time + exec;
      if (!own) {
        // A cross-island job ships at the next barrier; the uplink
        // transfer overlaps the ferry wait, so the job is priced at
        // whichever dominates plus the remote execution.
        const double ferry = std::max(step_end - op.at, 0.0);
        time = std::max(net_time, ferry) + exec;
      }
      const double energy =
          net_time * (p.power.idle_w + p.power.net_w) +
          (time - net_time) * p.power.idle_w;
      const double cost = time + p.energy_importance * energy;
      if (cost < best_cost) {
        best_cost = cost;
        d.server = static_cast<int>(s);
        d.predicted_s = time;
        d.net_time_s = net_time;
      }
    }
  }
  return d;
}

void FleetWorld::island_decisions(std::size_t island, util::Seconds t1) {
  const std::vector<std::uint32_t>& members = plan_.clients[island];
  const util::Seconds step_end = exec_.next_barrier();
  // With one island the islands themselves offer no parallelism, so the
  // decision stage fans out across the pool in fixed client chunks (the
  // legacy shape); with many islands the island is the parallel unit and
  // this stage runs inline on its worker.
  exec::ThreadPool* pool = plan_.islands == 1 ? stage_pool_ : nullptr;
  exec::parallel_for_chunked(
      pool, members.size(), kClientChunk, [&](std::size_t idx) {
        const std::uint32_t client = members[idx];
        ClientState& st = clients_[client];
        complete_local(client, t1);
        const std::vector<FleetOp>& sched = scenario_->schedules()[client];
        while (st.next_op < sched.size() && sched[st.next_op].at <= t1) {
          const FleetOp& op = sched[st.next_op++];
          const double w0 = wall_now_ms();
          Decision d = decide(island, client, op, step_end);
          st.decision_wall_ms.push_back(wall_now_ms() - w0);
          ++st.decisions;
          if (trace_on_) {
            obs::TraceEvent ev("fleet_decision", op.at);
            ev.field("client", static_cast<std::int64_t>(client))
                .field("target",
                       d.server < 0
                           ? std::string("local")
                           : scenario_->servers()[d.server].name.str())
                .field("predicted", d.predicted_s);
            st.trace.emit(ev);
          }
          if (d.server < 0) {
            run_local(client, op, op.at, /*fallback=*/false);
          } else {
            decision_scratch_[client].push_back(d);
          }
        }
      });
}

bool FleetWorld::submit_remote(std::uint32_t client, std::size_t server,
                               const FleetOp& op, double net_time_s,
                               util::Seconds reject_from) {
  ClientState& st = clients_[client];
  const FleetClientProfile& p = scenario_->profiles()[client];
  const auto id = servers_[server].queue.submit(static_cast<int>(client),
                                                p.weight, op.cycles, op.at);
  if (!id.has_value()) {
    ++st.rejected;
    run_local(client, op, reject_from, /*fallback=*/true);
    return false;
  }
  RemoteMeta meta;
  meta.client = client;
  meta.arrived = op.at;
  meta.bytes = op.bytes;
  meta.net_time = net_time_s;
  meta.cycles = op.cycles;
  meta.fp_heavy = op.fp_heavy;
  SPECTRA_REQUIRE(*id == servers_[server].meta.size() + 1,
                  "admission ids must stay dense");
  servers_[server].meta.push_back(meta);
  return true;
}

void FleetWorld::island_submit(std::size_t island) {
  IslandState& is = islands_[island];
  is.tick_decisions.clear();
  for (const std::uint32_t c : plan_.clients[island]) {
    std::vector<Decision>& pending = decision_scratch_[c];
    is.tick_decisions.insert(is.tick_decisions.end(), pending.begin(),
                             pending.end());
    pending.clear();
  }
  // Island admission order: arrival time, ties by client index (stable —
  // the scratch was concatenated in client order).
  std::stable_sort(is.tick_decisions.begin(), is.tick_decisions.end(),
                   [](const Decision& a, const Decision& b) {
                     return a.op.at < b.op.at;
                   });
  std::size_t transfers = 0;
  for (const Decision& d : is.tick_decisions) {
    const auto s = static_cast<std::size_t>(d.server);
    if (plan_.island_of_server[s] != static_cast<std::uint32_t>(island)) {
      // Cross-island pick: the uplink transfer starts now (it counts
      // against the shared medium this tick) and the job ferries to the
      // barrier, where the sequential exchange admits it.
      ++transfers;
      is.out_submissions.push_back(
          {d.client, static_cast<std::uint32_t>(s), d.op, d.net_time_s});
      continue;
    }
    ClientState& st = clients_[d.client];
    if (!is.medium_up || !servers_[s].up) {
      // The world changed between decision and submission (fault applied
      // this tick): fall back to local execution.
      ++st.rejected;
      run_local(d.client, d.op, d.op.at, /*fallback=*/true);
      continue;
    }
    if (submit_remote(d.client, s, d.op, d.net_time_s, d.op.at)) ++transfers;
  }
  is.tick_transfers.push_back(transfers);
}

void FleetWorld::publish_island(std::size_t island, util::Seconds t0,
                                util::Seconds t1) {
  IslandState& is = islands_[island];
  const double dt = t1 - t0;
  const std::vector<std::uint32_t>& members = plan_.servers[island];
  for (std::size_t j = 0; j < members.size(); ++j) {
    ServerState& server = servers_[members[j]];
    const double busy = server.queue.busy_time();
    const double util = dt > 0.0 ? (busy - server.busy_last) / dt : 0.0;
    server.busy_last = busy;
    is.board.publish(j, server.queue.run_queue(), util, server.up);
  }
  is.board.flip();
}

void FleetWorld::island_tick(std::size_t island, util::Seconds t0,
                             util::Seconds t1) {
  apply_island_faults(island, t0, t1);
  serve_island(island, t0, t1);
  island_decisions(island, t1);
  island_submit(island);
  publish_island(island, t0, t1);
}

void FleetWorld::island_advance(std::size_t island, util::Seconds target) {
  const util::Seconds tick = scenario_->config().tick;
  IslandState& is = islands_[island];
  while (is.now + 1e-9 < target) {
    const util::Seconds t0 = is.now;
    const util::Seconds t1 = std::min(t0 + tick, target);
    island_tick(island, t0, t1);
    is.now = t1;
  }
}

void FleetWorld::fold_medium() {
  const std::size_t ticks =
      islands_.empty() ? 0 : islands_[0].tick_transfers.size();
  for (const IslandState& is : islands_) {
    SPECTRA_REQUIRE(is.tick_transfers.size() == ticks,
                    "islands lost tick lockstep before a barrier fold");
  }
  // Position-wise sum across islands, in tick order: the EWMA sees exactly
  // the per-tick fleet-wide transfer counts a sequential run would feed it.
  for (std::size_t j = 0; j < ticks; ++j) {
    std::size_t total = 0;
    for (const IslandState& is : islands_) total += is.tick_transfers[j];
    medium_est_.add(static_cast<double>(total));
  }
  for (IslandState& is : islands_) is.tick_transfers.clear();
}

void FleetWorld::deliver_mail(util::Seconds t) {
  // Completions first (pure accounting), then crash aborts (rerun locally
  // from the barrier), then ferried submissions — each class drained in
  // island index order, submissions globally re-sorted by (arrival,
  // client) so admission order stays a pure function of the scenario.
  for (IslandState& is : islands_) {
    for (const CrossCompletion& cc : is.out_completions) {
      credit_completion(cc.client, cc.arrived, cc.finished, cc.energy,
                        cc.ideal, cc.server);
    }
    is.out_completions.clear();
  }
  for (IslandState& is : islands_) {
    for (const CrossAbort& ca : is.out_aborts) {
      ++clients_[ca.client].aborted;
      run_local(ca.client, ca.op, t, /*fallback=*/true);
    }
    is.out_aborts.clear();
  }
  mail_submissions_.clear();
  for (IslandState& is : islands_) {
    mail_submissions_.insert(mail_submissions_.end(),
                             is.out_submissions.begin(),
                             is.out_submissions.end());
    is.out_submissions.clear();
  }
  std::sort(mail_submissions_.begin(), mail_submissions_.end(),
            [](const CrossSubmission& a, const CrossSubmission& b) {
              return a.op.at != b.op.at ? a.op.at < b.op.at
                                        : a.client < b.client;
            });
  cross_submissions_ += mail_submissions_.size();
  for (const CrossSubmission& cs : mail_submissions_) {
    ClientState& st = clients_[cs.client];
    if (!barrier_medium_up_ || !servers_[cs.server].up) {
      // The medium partitioned or the target crashed while the job was on
      // the wire: fall back to local execution from the barrier.
      ++st.rejected;
      run_local(cs.client, cs.op, t, /*fallback=*/true);
      continue;
    }
    submit_remote(cs.client, cs.server, cs.op, cs.net_time_s, t);
  }
}

void FleetWorld::exchange(util::Seconds t) {
  fold_medium();
  // World-level medium availability at barrier time, for admitting ferried
  // submissions (its own cursor over the same expanded link events).
  while (barrier_fault_cursor_ < fault_events_.size() &&
         fault_events_[barrier_fault_cursor_].at < t) {
    const fault::FaultEvent& e = fault_events_[barrier_fault_cursor_++];
    if (e.kind == fault::FaultKind::kLinkDown) barrier_medium_up_ = false;
    if (e.kind == fault::FaultKind::kLinkUp) barrier_medium_up_ = true;
  }
  deliver_mail(t);
  // Refreeze cross-island load views for the next super-step.
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    islands_[i].board.snapshot_into(frozen_views_, plan_.servers[i].front());
  }
}

void FleetWorld::run_until(util::Seconds until, exec::ThreadPool* pool) {
  until = std::min(until, scenario_->config().horizon);
  stage_pool_ = pool;
  const double w0 = wall_now_ms();
  exec_.run_until(until, pool);
  wall_seconds_ += (wall_now_ms() - w0) / 1e3;
  stage_pool_ = nullptr;
}

std::uint64_t FleetWorld::state_fingerprint() const {
  std::uint64_t h = util::kFnvOffset;
  for (const ClientState& st : clients_) {
    h = util::fnv_mix(h, st.decisions);
    h = util::fnv_mix(h, st.completed);
    h = util::fnv_mix(h, st.completed_local);
    h = util::fnv_mix(h, st.completed_remote);
    h = util::fnv_mix(h, st.rejected);
    h = util::fnv_mix(h, st.aborted);
    h = util::fnv_mix(h, st.battery_cliffs);
    h = util::fnv_mix(h, st.forced_local_until);
    h = util::fnv_mix(h, static_cast<std::uint64_t>(st.next_op));
    h = util::fnv_mix(h, st.latency_sum_s);
    h = util::fnv_mix(h, st.slowdown_sum);
    h = util::fnv_mix(h, st.energy_j);
    h = util::fnv_mix(h, st.local_free_at);
    h = util::fnv_mix(h, static_cast<std::uint64_t>(st.local_runs.size()));
  }
  for (const ServerState& server : servers_) {
    h = server.queue.fingerprint(h);
    h = util::fnv_mix(h, static_cast<std::uint64_t>(server.up ? 1 : 0));
  }
  h = util::fnv_mix(h, exec_.now());
  h = util::fnv_mix(h, medium_est_.empty() ? -1.0 : medium_est_.value());
  return h;
}

std::unique_ptr<FleetWorld> FleetWorld::clone(obs::Observability* obs) const {
  auto copy = std::make_unique<FleetWorld>(scenario_, obs);
  copy->clients_ = clients_;
  copy->servers_ = servers_;
  copy->islands_ = islands_;
  copy->frozen_views_ = frozen_views_;
  copy->medium_est_ = medium_est_;
  copy->barrier_medium_up_ = barrier_medium_up_;
  copy->barrier_fault_cursor_ = barrier_fault_cursor_;
  copy->cross_submissions_ = cross_submissions_;
  copy->exec_.copy_state_from(exec_);
  // Tracing follows the new session, but the shard buffers carry over, so
  // the clone's merged trace equals an uncloned full run's.
  if (!copy->trace_on_) {
    for (IslandState& is : copy->islands_) is.fault_trace.clear();
    for (ClientState& st : copy->clients_) st.trace.clear();
  }
  return copy;
}

FleetReport FleetWorld::finish(exec::ThreadPool* pool) {
  if (finished_) return report_;
  const FleetConfig& cfg = scenario_->config();
  run_until(cfg.horizon, pool);
  // Horizon settlement: fold the trailing ticks' medium counts and deliver
  // the outstanding cross-island mail — completions that finished before
  // the horizon are credited, crash aborts rerun locally, and ferried
  // submissions land in their queue (and stay in flight, matching the
  // treatment of jobs queued at the horizon).
  fold_medium();
  while (barrier_fault_cursor_ < fault_events_.size() &&
         fault_events_[barrier_fault_cursor_].at < exec_.now()) {
    const fault::FaultEvent& e = fault_events_[barrier_fault_cursor_++];
    if (e.kind == fault::FaultKind::kLinkDown) barrier_medium_up_ = false;
    if (e.kind == fault::FaultKind::kLinkUp) barrier_medium_up_ = true;
  }
  deliver_mail(exec_.now());
  finished_ = true;

  FleetReport r;
  r.clients = cfg.clients;
  r.servers = cfg.servers;
  r.policy = cfg.admission.policy;
  r.horizon = cfg.horizon;
  r.islands = plan_.islands;
  r.lookahead_s = plan_.lookahead;
  r.virtual_end = exec_.now();
  r.ops_cross_island = cross_submissions_;

  std::vector<double> latencies;
  std::vector<double> slowdowns;
  std::vector<double> wall_ms;
  for (const ClientState& st : clients_) {
    r.decisions += st.decisions;
    r.ops_completed += st.completed;
    r.ops_local += st.completed_local;
    r.ops_remote += st.completed_remote;
    r.ops_rejected += st.rejected;
    r.ops_aborted += st.aborted;
    r.battery_cliffs += st.battery_cliffs;
    r.aggregate_energy_j += st.energy_j;
    latencies.insert(latencies.end(), st.latencies_s.begin(),
                     st.latencies_s.end());
    wall_ms.insert(wall_ms.end(), st.decision_wall_ms.begin(),
                   st.decision_wall_ms.end());
    if (st.completed > 0) {
      slowdowns.push_back(st.slowdown_sum /
                          static_cast<double>(st.completed));
    }
  }
  if (!latencies.empty()) {
    r.latency_mean_s = util::mean_of(latencies);
    r.latency_p50_s = util::percentile_value(latencies, 50.0);
    r.latency_p99_s = util::percentile_value(latencies, 99.0);
  }
  // Jain's fairness index over per-client mean slowdown: 1.0 when every
  // client gets the same relative service, 1/n when one client gets it all.
  if (!slowdowns.empty()) {
    double sum = 0.0;
    double sq = 0.0;
    for (double x : slowdowns) {
      sum += x;
      sq += x * x;
    }
    r.jain_fairness =
        sq > 0.0 ? (sum * sum) / (static_cast<double>(slowdowns.size()) * sq)
                 : 0.0;
  }
  double util_sum = 0.0;
  double util_min = 1.0;
  double util_max = 0.0;
  const util::Seconds now = exec_.now();
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const FleetServerSpec& spec = scenario_->servers()[s];
    const double busy = servers_[s].queue.busy_time();
    const double busy_frac = now > 0.0 ? busy / now : 0.0;
    util_sum += busy_frac;
    util_min = std::min(util_min, busy_frac);
    util_max = std::max(util_max, busy_frac);
    r.aggregate_energy_j +=
        busy * (spec.power.idle_w + spec.power.cpu_w) +
        (now - busy) * spec.power.idle_w;
  }
  r.server_utilization_mean = util_sum / static_cast<double>(servers_.size());
  r.server_utilization_min = util_min;
  r.server_utilization_max = util_max;
  r.fingerprint = state_fingerprint();

  r.wall_seconds = wall_seconds_;
  if (!wall_ms.empty()) {
    r.decision_wall_p50_ms = util::percentile_value(wall_ms, 50.0);
    r.decision_wall_p99_ms = util::percentile_value(wall_ms, 99.0);
  }
  if (wall_seconds_ > 0.0) {
    r.decisions_per_wall_sec =
        static_cast<double>(r.decisions) / wall_seconds_;
    r.events_per_wall_sec =
        static_cast<double>(r.decisions + r.ops_completed) / wall_seconds_;
  }

  if (session_ != nullptr) {
    obs::MetricsRegistry& m = session_->metrics();
    m.counter("fleet.decisions").add(static_cast<double>(r.decisions));
    m.counter("fleet.ops.completed").add(static_cast<double>(r.ops_completed));
    m.counter("fleet.ops.local").add(static_cast<double>(r.ops_local));
    m.counter("fleet.ops.remote").add(static_cast<double>(r.ops_remote));
    m.counter("fleet.ops.rejected").add(static_cast<double>(r.ops_rejected));
    m.counter("fleet.ops.aborted").add(static_cast<double>(r.ops_aborted));
    // Conditional so cliff-free / single-island runs keep their metrics
    // goldens byte-identical.
    if (r.battery_cliffs > 0) {
      m.counter("fleet.battery_cliffs")
          .add(static_cast<double>(r.battery_cliffs));
    }
    if (r.ops_cross_island > 0) {
      m.counter("fleet.ops.cross_island")
          .add(static_cast<double>(r.ops_cross_island));
    }
    m.counter("fleet.energy_j").add(r.aggregate_energy_j);
    m.counter("fleet.jain_fairness").add(r.jain_fairness);
    obs::Histogram& lat = m.histogram("fleet.op.latency_s");
    for (double x : latencies) lat.observe(x);
    obs::Histogram& util_hist = m.histogram("fleet.server.utilization");
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      util_hist.observe(now > 0.0 ? servers_[s].queue.busy_time() / now
                                  : 0.0);
    }
    // Wall-clock metrics carry the ".wall_ms" suffix so determinism checks
    // and goldens can strip them.
    obs::Histogram& wall = m.histogram("fleet.decision.wall_ms");
    for (double x : wall_ms) wall.observe(x);
    m.histogram("fleet.run.wall_ms").observe(wall_seconds_ * 1e3);
    if (session_->tracing()) {
      // Island decomposition header (multi-island runs only, so legacy
      // single-island goldens keep their bytes), then per-island fault
      // shards and per-client shards in index order — the same
      // deterministic merge discipline BatchRunner uses.
      if (plan_.islands > 1) {
        obs::TraceEvent header("fleet_islands", 0.0);
        header.field("islands", static_cast<std::int64_t>(plan_.islands))
            .field("lookahead", plan_.lookahead);
        session_->trace()->emit(header);
      }
      for (const IslandState& is : islands_) {
        session_->trace()->write_raw(is.fault_trace.bytes());
      }
      for (const ClientState& st : clients_) {
        session_->trace()->write_raw(st.trace.bytes());
      }
      obs::TraceEvent summary("fleet_summary", now);
      summary.field("clients", static_cast<std::int64_t>(r.clients))
          .field("completed", static_cast<std::int64_t>(r.ops_completed))
          .field("remote", static_cast<std::int64_t>(r.ops_remote))
          .field("rejected", static_cast<std::int64_t>(r.ops_rejected))
          .field("p99_latency", r.latency_p99_s)
          .field("jain", r.jain_fairness);
      session_->trace()->emit(summary);
    }
  }

  report_ = r;
  return report_;
}

// ------------------------------------------------------------------- report

std::string FleetReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"clients\": " << clients << ",\n";
  os << "  \"servers\": " << servers << ",\n";
  os << "  \"islands\": " << islands << ",\n";
  os << "  \"lookahead_s\": " << obs::format_double(lookahead_s) << ",\n";
  os << "  \"policy\": \"" << core::to_string(policy) << "\",\n";
  os << "  \"horizon_s\": " << obs::format_double(horizon) << ",\n";
  os << "  \"decisions\": " << decisions << ",\n";
  os << "  \"ops_completed\": " << ops_completed << ",\n";
  os << "  \"ops_local\": " << ops_local << ",\n";
  os << "  \"ops_remote\": " << ops_remote << ",\n";
  os << "  \"ops_rejected\": " << ops_rejected << ",\n";
  os << "  \"ops_aborted\": " << ops_aborted << ",\n";
  os << "  \"ops_cross_island\": " << ops_cross_island << ",\n";
  os << "  \"battery_cliffs\": " << battery_cliffs << ",\n";
  os << "  \"latency_p50_s\": " << obs::format_double(latency_p50_s) << ",\n";
  os << "  \"latency_p99_s\": " << obs::format_double(latency_p99_s) << ",\n";
  os << "  \"latency_mean_s\": " << obs::format_double(latency_mean_s)
     << ",\n";
  os << "  \"server_utilization_mean\": "
     << obs::format_double(server_utilization_mean) << ",\n";
  os << "  \"server_utilization_min\": "
     << obs::format_double(server_utilization_min) << ",\n";
  os << "  \"server_utilization_max\": "
     << obs::format_double(server_utilization_max) << ",\n";
  os << "  \"aggregate_energy_j\": "
     << obs::format_double(aggregate_energy_j) << ",\n";
  os << "  \"jain_fairness\": " << obs::format_double(jain_fairness) << ",\n";
  os << "  \"virtual_end_s\": " << obs::format_double(virtual_end) << ",\n";
  os << "  \"fingerprint\": \"" << std::hex << fingerprint << std::dec
     << "\",\n";
  os << "  \"wall\": {\n";
  os << "    \"seconds\": " << obs::format_double(wall_seconds) << ",\n";
  os << "    \"decision_p50_ms\": "
     << obs::format_double(decision_wall_p50_ms) << ",\n";
  os << "    \"decision_p99_ms\": "
     << obs::format_double(decision_wall_p99_ms) << ",\n";
  os << "    \"decisions_per_sec\": "
     << obs::format_double(decisions_per_wall_sec) << ",\n";
  os << "    \"events_per_sec\": "
     << obs::format_double(events_per_wall_sec) << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

FleetReport run_fleet(const FleetConfig& config, std::size_t jobs,
                      obs::Observability* session) {
  auto scenario = std::make_shared<FleetScenario>(config);
  FleetWorld world(std::move(scenario), session);
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<exec::ThreadPool>(jobs);
  return world.finish(pool.get());
}

}  // namespace spectra::scenario
