#include "scenario/batch.h"

#include <cstdlib>
#include <cstring>

namespace spectra::scenario {

bool default_reuse_trained_world() {
  const char* env = std::getenv("SPECTRA_REUSE");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::size_t resolve_jobs(long requested) {
  if (requested == 0) return exec::ThreadPool::hardware_concurrency();
  return requested < 1 ? 1 : static_cast<std::size_t>(requested);
}

BatchRunner::BatchRunner(std::size_t jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  if (jobs_ > 1) pool_ = std::make_unique<exec::ThreadPool>(jobs_);
}

TrainedWorldCache& TrainedWorldCache::instance() {
  static TrainedWorldCache cache;
  return cache;
}

std::shared_ptr<const World> TrainedWorldCache::get(
    const std::string& key,
    const std::function<std::unique_ptr<World>()>& build) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = slots_[key];
    if (entry == nullptr) entry = std::make_shared<Slot>();
    slot = entry;
  }
  std::call_once(slot->once, [&] { slot->world = build(); });
  return slot->world;
}

void TrainedWorldCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

std::size_t TrainedWorldCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace spectra::scenario
