// Shard planner for island-parallel fleet worlds.
//
// Partitions a FleetScenario's clients and servers into K islands so that
// most events stay island-local: each island owns a contiguous block of
// pool servers (the alternating 400/933 MHz classes mean any block of >= 2
// contains both speeds, so placement rarely needs to leave the island), and
// clients are assigned greedily to balance offered demand against island
// compute capacity — the compute-vs-communication balance the "Algorithmic
// Time, Energy, and Power" framing asks shard boundaries to respect.
//
// The plan and the lookahead horizon are pure functions of the scenario —
// never of --jobs — which is the root of the byte-identity guarantee: every
// worker count executes the same K island tasks over the same windows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.h"

namespace spectra::scenario {

class FleetScenario;
struct FleetConfig;

// The cross-island interaction cadence, and therefore the natural
// conservative lookahead: an island cannot react to another island's load
// faster than a client learns about remote load at all, and the status-poll
// interval (core::SpectraClientConfig::poll_period) bounds that from below.
// The link round trip (FleetConfig::rtt, ~20 ms) is a far smaller bound and
// never binds at fleet tick sizes.
inline constexpr util::Seconds kCrossIslandPollInterval = 5.0;

struct IslandPlan {
  std::size_t islands = 1;
  // Barrier spacing H for sim::IslandExecutor.
  util::Seconds lookahead = 0.0;
  std::vector<std::uint32_t> island_of_client;
  std::vector<std::uint32_t> island_of_server;
  // Members per island: clients ascending, servers a contiguous ascending
  // block (so global index - servers[i].front() is the island-local index).
  std::vector<std::vector<std::uint32_t>> clients;
  std::vector<std::vector<std::uint32_t>> servers;
  // Balance diagnostics: per-island offered demand (sum of client arrival
  // rate scales) and compute capacity (sum of server Hz).
  std::vector<double> demand;
  std::vector<double> capacity;
};

// Default island count: one island per ~250 clients, but never fewer than
// two servers per island (both server classes stay island-local) and never
// more islands than servers. Small worlds — every committed golden config,
// the 64-client test ladder — resolve to 1, where the island pipeline
// reduces exactly to the sequential tick pipeline.
std::size_t auto_island_count(std::size_t clients, std::size_t servers);

// The conservative lookahead horizon H for `islands` islands: the
// configured override when set, else kCrossIslandPollInterval, floored at
// one tick. A single island needs no cross-island conservatism and runs
// barrier-per-tick (H = tick), which preserves the legacy cadence exactly.
util::Seconds derive_lookahead(const FleetConfig& config, std::size_t islands);

// Build the plan for `scenario` (island count from config.islands, 0 =
// auto_island_count). Throws util::ContractError when config.islands
// exceeds the server count.
IslandPlan plan_islands(const FleetScenario& scenario);

}  // namespace spectra::scenario
