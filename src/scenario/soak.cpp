#include "scenario/soak.h"

#include <cstring>
#include <sstream>

#include "obs/trace.h"
#include "scenario/experiment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace spectra::scenario {

namespace {

// FNV-1a over the plan's observable outcome. Anything that could diverge
// between a run and its replay — op results, fault firing order, final
// virtual time — gets folded in, so equal fingerprints mean bit-identical
// execution.
class Fingerprint {
 public:
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }
  void add_double(double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    add_u64(bits);
  }
  void add_string(const std::string& s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= 0x100000001b3ULL;
    }
    add_u64(s.size());
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// One full Spectra operation (begin / execute / end) with parameters drawn
// from `rng`. A util::ContractError mid-operation — the file server
// partitioning during a fetch, say — aborts the op; the client's op state
// is finalized so the next operation starts clean.
SoakOpOutcome drive_op(World& world, SoakApp app, util::Rng& rng,
                       Fingerprint& fp, std::vector<std::string>& violations) {
  core::SpectraClient& client = world.spectra();
  const util::Seconds before = world.engine().now();
  SoakOpOutcome outcome = SoakOpOutcome::kAborted;
  try {
    core::OperationChoice choice;
    switch (app) {
      case SoakApp::kSpeech: {
        const double len = rng.uniform(1.0, 3.0);
        choice = client.begin_fidelity_op(apps::JanusApp::kOperation,
                                          {{"utt_len", len}});
        if (choice.ok) world.janus().execute(client, len);
        break;
      }
      case SoakApp::kLatex: {
        const std::string doc = rng.bernoulli(0.5) ? "large" : "small";
        choice = client.begin_fidelity_op(apps::LatexApp::kOperation, {}, doc);
        if (choice.ok) world.latex().execute(client, doc);
        break;
      }
      case SoakApp::kPangloss: {
        const int words = static_cast<int>(rng.uniform_int(4, 30));
        choice = client.begin_fidelity_op(
            apps::PanglossApp::kOperation,
            {{"words", static_cast<double>(words)}});
        if (choice.ok) world.pangloss().execute(client, words);
        break;
      }
    }
    if (!choice.ok) {
      outcome = SoakOpOutcome::kNoChoice;
    } else {
      const monitor::OperationUsage usage = client.end_fidelity_op();
      outcome = SoakOpOutcome::kCompleted;
      fp.add_double(usage.elapsed);
      fp.add_double(usage.energy_valid ? usage.energy : -1.0);
      fp.add_u64(static_cast<std::uint64_t>(choice.alternative.plan));
      fp.add_u64(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(choice.alternative.server)));
    }
  } catch (const util::ContractError&) {
    outcome = SoakOpOutcome::kAborted;
    if (client.op_in_progress()) {
      try {
        (void)client.end_fidelity_op();
      } catch (const util::ContractError&) {
        violations.push_back("aborted operation could not be finalized");
      }
    }
  }
  if (world.engine().now() < before) {
    violations.push_back("virtual time went backwards across an operation");
  }
  if (client.op_in_progress()) {
    violations.push_back("operation left in progress");
  }
  fp.add_u64(static_cast<std::uint64_t>(outcome));
  fp.add_double(world.engine().now());
  return outcome;
}

SoakPlanResult run_plan(const SoakConfig& config, const World& tmpl,
                        std::uint64_t chaos_seed,
                        obs::Observability* run_obs) {
  SoakPlanResult result;
  result.chaos_seed = chaos_seed;
  const fault::FaultPlan plan =
      fault::make_chaos_plan(chaos_seed, soak_topology(config.app),
                             config.chaos);

  std::unique_ptr<World> world = tmpl.clone(run_obs);
  sim::Engine& engine = world->engine();
  const util::Seconds start = engine.now();
  world->arm_faults(plan);

  // Operation parameters flow from the chaos seed, independent of the
  // world's own randomness, so run and replay draw identically.
  util::Rng op_rng(chaos_seed * 0x2545f4914f6cdd1dULL +
                   0x9e3779b97f4a7c15ULL);
  Fingerprint fp;

  const util::Seconds gap =
      config.chaos.horizon / static_cast<double>(config.ops_per_plan + 1);
  for (int k = 0; k < config.ops_per_plan; ++k) {
    world->settle(gap);
    switch (drive_op(*world, config.app, op_rng, fp, result.violations)) {
      case SoakOpOutcome::kCompleted: ++result.completed; break;
      case SoakOpOutcome::kNoChoice: ++result.no_choice; break;
      case SoakOpOutcome::kAborted: ++result.aborted; break;
    }
  }

  // Fault-free tail: run past the horizon so every bounded fault heals,
  // then give the healed world a moment to converge before the final
  // consistency sweep.
  const util::Seconds elapsed = engine.now() - start;
  if (elapsed < config.chaos.horizon) {
    world->settle(config.chaos.horizon - elapsed);
  }
  world->settle(5.0);

  if (engine.now() <= start) {
    result.violations.push_back("virtual time did not advance");
  }
  if (world->spectra().op_in_progress()) {
    result.violations.push_back("operation in progress after final settle");
  }
  std::vector<MachineId> coda_hosts{kClient};
  for (MachineId id : world->server_ids()) coda_hosts.push_back(id);
  for (MachineId id : coda_hosts) {
    for (const std::string& v : world->coda(id).check_invariants()) {
      result.violations.push_back("coda@" + std::to_string(id) + ": " + v);
    }
  }

  fp.add_string(world->fault_injector().trace_string());
  fp.add_double(engine.now());
  result.fingerprint = fp.value();
  result.virtual_end = engine.now();
  return result;
}

// Trained template world for the soak's application. Keys match the ones
// the experiments use, so a soak shares cached templates with ordinary
// scenario runs in the same process.
std::shared_ptr<const World> soak_template(const SoakConfig& config) {
  auto& cache = TrainedWorldCache::instance();
  std::ostringstream key;
  switch (config.app) {
    case SoakApp::kSpeech: {
      SpeechExperiment::Config ec;
      ec.seed = config.world_seed;
      SpeechExperiment exp(ec);
      key << "speech|" << static_cast<int>(ec.scenario) << '|' << ec.seed
          << '|' << ec.training_runs << '|' << ec.settle_time;
      return cache.get(key.str(), [&exp] { return exp.trained_world(nullptr); });
    }
    case SoakApp::kLatex: {
      LatexExperiment::Config ec;
      ec.seed = config.world_seed;
      LatexExperiment exp(ec);
      key << "latex|" << static_cast<int>(ec.scenario) << '|' << ec.seed
          << '|' << ec.training_runs << '|' << ec.settle_time;
      return cache.get(key.str(), [&exp] { return exp.trained_world(nullptr); });
    }
    case SoakApp::kPangloss: {
      PanglossExperiment::Config ec;
      ec.seed = config.world_seed;
      PanglossExperiment exp(ec);
      key << "pangloss|" << static_cast<int>(ec.scenario) << '|' << ec.seed
          << '|' << ec.training_runs << '|' << ec.settle_time;
      return cache.get(key.str(), [&exp] { return exp.trained_world(nullptr); });
    }
  }
  SPECTRA_REQUIRE(false, "unknown soak app");
  return nullptr;
}

}  // namespace

const char* to_string(SoakApp app) {
  switch (app) {
    case SoakApp::kSpeech: return "speech";
    case SoakApp::kLatex: return "latex";
    case SoakApp::kPangloss: return "pangloss";
  }
  return "?";
}

fault::ChaosTopology soak_topology(SoakApp app) {
  fault::ChaosTopology topo;
  if (app == SoakApp::kSpeech) {
    // kItsy: client 0, T20 server 1, file server 9.
    topo.links = {{kClient, kServerT20},
                  {kClient, kFileServer},
                  {kServerT20, kFileServer}};
    topo.servers = {kServerT20};
  } else {
    // kThinkpad: client 0, servers A/B, file server 9.
    topo.links = {{kClient, kServerA},   {kClient, kServerB},
                  {kClient, kFileServer}, {kServerA, kServerB},
                  {kServerA, kFileServer}, {kServerB, kFileServer}};
    topo.servers = {kServerA, kServerB};
  }
  return topo;
}

int SoakReport::total_completed() const {
  int n = 0;
  for (const auto& p : plans) n += p.completed;
  return n;
}

int SoakReport::total_aborted() const {
  int n = 0;
  for (const auto& p : plans) n += p.aborted;
  return n;
}

int SoakReport::total_no_choice() const {
  int n = 0;
  for (const auto& p : plans) n += p.no_choice;
  return n;
}

std::vector<std::string> SoakReport::all_violations() const {
  std::vector<std::string> out;
  for (const auto& p : plans) {
    for (const auto& v : p.violations) {
      out.push_back("seed " + std::to_string(p.chaos_seed) + ": " + v);
    }
  }
  return out;
}

std::string SoakReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"app\": " << obs::json_quote(to_string(config.app)) << ",\n";
  os << "  \"plans\": " << config.plans << ",\n";
  os << "  \"ops_per_plan\": " << config.ops_per_plan << ",\n";
  os << "  \"base_seed\": " << config.base_seed << ",\n";
  os << "  \"horizon_s\": " << config.chaos.horizon << ",\n";
  os << "  \"intensity\": " << config.chaos.intensity << ",\n";
  os << "  \"replay_check\": " << (config.replay_check ? "true" : "false")
     << ",\n";
  os << "  \"completed\": " << total_completed() << ",\n";
  os << "  \"aborted\": " << total_aborted() << ",\n";
  os << "  \"no_choice\": " << total_no_choice() << ",\n";
  const auto violations = all_violations();
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << ", ";
    os << obs::json_quote(violations[i]);
  }
  os << "],\n";
  os << "  \"clean\": " << (violations.empty() ? "true" : "false") << ",\n";
  os << "  \"plan_results\": [\n";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const SoakPlanResult& p = plans[i];
    std::ostringstream hex;
    hex << std::hex << p.fingerprint;
    os << "    {\"seed\": " << p.chaos_seed
       << ", \"completed\": " << p.completed
       << ", \"aborted\": " << p.aborted
       << ", \"no_choice\": " << p.no_choice << ", \"fingerprint\": \"0x"
       << hex.str() << "\", \"replay_identical\": "
       << (p.replay_identical ? "true" : "false")
       << ", \"virtual_end_s\": " << p.virtual_end
       << ", \"violations\": " << p.violations.size() << "}"
       << (i + 1 < plans.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string SoakReport::summary() const {
  std::ostringstream os;
  os << to_string(config.app) << " soak: " << plans.size() << " plans, "
     << total_completed() << " ops completed, " << total_aborted()
     << " aborted, " << total_no_choice() << " infeasible";
  const auto violations = all_violations();
  if (violations.empty()) {
    os << ", 0 invariant violations";
  } else {
    os << ", " << violations.size() << " INVARIANT VIOLATIONS";
  }
  if (config.replay_check) {
    int mismatches = 0;
    for (const auto& p : plans) {
      if (!p.replay_identical) ++mismatches;
    }
    os << (mismatches == 0 ? ", replay bit-identical"
                           : ", REPLAY MISMATCHES: " +
                                 std::to_string(mismatches));
  }
  return os.str();
}

SoakReport run_soak(const SoakConfig& config, BatchRunner& runner,
                    obs::Observability* session) {
  SPECTRA_REQUIRE(config.plans > 0, "soak needs at least one plan");
  SPECTRA_REQUIRE(config.ops_per_plan > 0,
                  "soak needs at least one op per plan");
  SoakReport report;
  report.config = config;
  // Build (or fetch) the shared template before fanning out so workers
  // clone instead of racing to train.
  std::shared_ptr<const World> tmpl = soak_template(config);
  report.plans = runner.map_runs(
      session, static_cast<std::size_t>(config.plans),
      [&](std::size_t i, obs::Observability* run_obs) {
        const std::uint64_t seed =
            config.base_seed + static_cast<std::uint64_t>(i) * 7919;
        SoakPlanResult result = run_plan(config, *tmpl, seed, run_obs);
        if (config.replay_check) {
          const SoakPlanResult replay =
              run_plan(config, *tmpl, seed, nullptr);
          result.replay_identical =
              replay.fingerprint == result.fingerprint;
          if (!result.replay_identical) {
            result.violations.push_back(
                "replay fingerprint mismatch (run vs replay clone)");
          }
        }
        return result;
      });
  return report;
}

}  // namespace spectra::scenario
