// Chaos soak harness (ISSUE 4): many seeded fault plans, each run against a
// cloned trained world, with liveness and consistency invariants asserted
// after every operation and at plan end.
//
// One soak = N plans. For plan i the harness derives a chaos seed from the
// base seed, generates a fault plan (fault::make_chaos_plan), clones the
// app's trained template world, arms the plan, and drives ops_per_plan full
// Spectra operations (begin_fidelity_op / execute / end_fidelity_op) spaced
// across the chaos horizon. Operations that die to a mid-run contract
// violation (e.g. the file server partitions during a cache miss) are
// recorded as aborted — an expected outcome under chaos, not an invariant
// violation — and the harness finalizes the client's op state so the next
// operation starts clean.
//
// Invariants checked per plan (violations are collected, not thrown):
//   * virtual time is monotone and advances across the plan;
//   * no operation is left in progress after its completion or abort;
//   * every Coda cache satisfies fs::CodaClient::check_invariants()
//     (accounting, LRU structure, dirty/version rules, journal state);
//   * when replay_check is set, re-running the identical plan on a second
//     clone produces a bit-identical outcome fingerprint.
//
// Plans fan out through BatchRunner::map_runs, so a soak's report is
// bit-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "obs/obs.h"
#include "scenario/batch.h"

namespace spectra::scenario {

enum class SoakApp { kSpeech, kLatex, kPangloss };

const char* to_string(SoakApp app);

struct SoakConfig {
  SoakApp app = SoakApp::kLatex;
  // Number of independent seeded fault plans.
  int plans = 25;
  // Base seed; plan i uses base_seed + i * 7919.
  std::uint64_t base_seed = 1;
  // Full Spectra operations driven per plan.
  int ops_per_plan = 4;
  // Chaos shape (horizon, intensity, durations).
  fault::ChaosConfig chaos;
  // Re-run every plan on a second clone and require bit-identical
  // fingerprints.
  bool replay_check = true;
  // World seed for the trained template (shared across plans).
  std::uint64_t world_seed = 1;
};

// Outcome of one operation inside a soak plan.
enum class SoakOpOutcome { kCompleted, kNoChoice, kAborted };

struct SoakPlanResult {
  std::uint64_t chaos_seed = 0;
  int completed = 0;
  int no_choice = 0;
  int aborted = 0;
  // FNV-1a over per-op outcomes, the fault injector trace, and the final
  // virtual time. Equal fingerprints mean bit-identical plan execution.
  std::uint64_t fingerprint = 0;
  bool replay_identical = true;
  util::Seconds virtual_end = 0.0;
  std::vector<std::string> violations;
};

struct SoakReport {
  SoakConfig config;
  std::vector<SoakPlanResult> plans;

  int total_completed() const;
  int total_aborted() const;
  int total_no_choice() const;
  std::vector<std::string> all_violations() const;
  bool clean() const { return all_violations().empty(); }

  std::string to_json() const;
  std::string summary() const;
};

// Topology chaos may break for `app`'s testbed (links, compute servers).
fault::ChaosTopology soak_topology(SoakApp app);

// Run the soak, fanning plans across `runner`. `session` (nullable)
// receives merged per-plan metrics/traces in plan order.
SoakReport run_soak(const SoakConfig& config, BatchRunner& runner,
                    obs::Observability* session = nullptr);

}  // namespace spectra::scenario
