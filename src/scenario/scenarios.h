// The paper's evaluation scenarios (§4).
//
// Each scenario is a mutation applied to a trained world, varying the
// availability of a single resource exactly as the paper does. Training
// always happens under baseline conditions; the scenario is applied
// afterwards, followed by a settling period during which Spectra's monitors
// observe the changed environment (status polls, passive network samples,
// run-queue smoothing, goal-directed adaptation).
#pragma once

#include <string>

#include "scenario/world.h"

namespace spectra::scenario {

enum class SpeechScenario { kBaseline, kEnergy, kNetwork, kCpu, kFileCache };
enum class LatexScenario { kBaseline, kFileCache, kReintegrate, kEnergy };
enum class PanglossScenario { kBaseline, kFileCache, kCpu };

std::string name(SpeechScenario s);
std::string name(LatexScenario s);
std::string name(PanglossScenario s);

// Energy-conservation importance pinned in the battery scenarios. The
// paper's c comes from goal-directed adaptation and is not reported; these
// values correspond to its "ambitious" (10-hour Itsy) and "very aggressive"
// (560X) lifetime goals. The adaptation loop itself is exercised by tests
// and examples.
inline constexpr double kSpeechEnergyImportance = 0.5;
inline constexpr double kLatexEnergyImportance = 0.8;

void apply(World& world, SpeechScenario s);
void apply(World& world, LatexScenario s);
void apply(World& world, PanglossScenario s);

// Pin c on the client's battery monitor (used by apply; exposed for tests).
void pin_energy_importance(World& world, double c);

}  // namespace spectra::scenario
