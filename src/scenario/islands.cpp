#include "scenario/islands.h"

#include <algorithm>

#include "scenario/fleet.h"
#include "util/assert.h"

namespace spectra::scenario {

std::size_t auto_island_count(std::size_t clients, std::size_t servers) {
  if (servers < 2) return 1;
  const std::size_t by_clients = clients / 250;
  const std::size_t by_servers = servers / 2;
  const std::size_t k = std::min(by_clients, by_servers);
  return std::clamp<std::size_t>(k, 1, servers);
}

util::Seconds derive_lookahead(const FleetConfig& config,
                               std::size_t islands) {
  if (islands <= 1) return config.tick;
  const util::Seconds base =
      config.lookahead > 0.0 ? config.lookahead : kCrossIslandPollInterval;
  return std::max(config.tick, base);
}

IslandPlan plan_islands(const FleetScenario& scenario) {
  const FleetConfig& cfg = scenario.config();
  const std::size_t nclients = scenario.profiles().size();
  const std::size_t nservers = scenario.servers().size();

  IslandPlan plan;
  plan.islands = cfg.islands != 0 ? cfg.islands
                                  : auto_island_count(nclients, nservers);
  SPECTRA_REQUIRE(plan.islands <= nservers,
                  "more islands than servers: every island needs at least "
                  "one pool server");
  plan.lookahead = derive_lookahead(cfg, plan.islands);

  const std::size_t k = plan.islands;
  plan.clients.resize(k);
  plan.servers.resize(k);
  plan.demand.assign(k, 0.0);
  plan.capacity.assign(k, 0.0);
  plan.island_of_client.resize(nclients);
  plan.island_of_server.resize(nservers);

  // Servers: contiguous near-equal blocks, island i owning
  // [i*S/K, (i+1)*S/K). Contiguity keeps the island-local index a simple
  // offset and, with the alternating server classes, gives every >=2-server
  // island both CPU speeds to place against.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t lo = i * nservers / k;
    const std::size_t hi = (i + 1) * nservers / k;
    for (std::size_t s = lo; s < hi; ++s) {
      plan.island_of_server[s] = static_cast<std::uint32_t>(i);
      plan.servers[i].push_back(static_cast<std::uint32_t>(s));
      plan.capacity[i] += scenario.servers()[s].cpu_hz;
    }
  }

  // Clients: greedy balance in index order. Each client's offered demand is
  // its arrival-rate scale; it joins the island where demand-per-capacity
  // stays lowest (ties break to the lowest index), so chatty clients spread
  // across the pool instead of piling onto one shard.
  for (std::size_t c = 0; c < nclients; ++c) {
    const double demand = scenario.profiles()[c].rate_scale;
    std::size_t best = 0;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double ratio = (plan.demand[i] + demand) / plan.capacity[i];
      if (i == 0 || ratio < best_ratio) {
        best = i;
        best_ratio = ratio;
      }
    }
    plan.island_of_client[c] = static_cast<std::uint32_t>(best);
    plan.clients[best].push_back(static_cast<std::uint32_t>(c));
    plan.demand[best] += demand;
  }
  return plan;
}

}  // namespace spectra::scenario
