// Experiment testbeds.
//
// A World wires a complete simulated reproduction of one of the paper's two
// hardware configurations:
//
//   * kItsy — Compaq Itsy v2.2 client (206 MHz SA-1100, software FP,
//     SmartBattery) + IBM T20 server (700 MHz PIII) joined by a serial
//     link, plus a Coda file server on a separate path (§4.1).
//   * kThinkpad — IBM 560X client (233 MHz Pentium, multimeter-metered) +
//     server A (400 MHz PII) + server B (933 MHz PIII) on a shared 2 Mb/s
//     wireless network, plus a Coda file server (§4.2, §4.3).
//
// Worlds are deterministic functions of their seed: rebuilding a world with
// the same seed and replaying the same operations reproduces identical
// timings, which is how the harness measures every alternative of a
// scenario from an identical starting state (fresh world per alternative).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "apps/janus.h"
#include "apps/latex.h"
#include "apps/pangloss.h"
#include "core/client.h"
#include "core/server.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fs/coda.h"
#include "hw/machine.h"
#include "net/network.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace spectra::scenario {

using hw::MachineId;

// kOverhead is a synthetic testbed for the Fig-10 overhead table: a client
// plus a configurable number of identical servers running a null service.
enum class Testbed { kItsy, kThinkpad, kOverhead };

inline constexpr MachineId kClient = 0;
inline constexpr MachineId kServerT20 = 1;  // Itsy testbed's compute server
inline constexpr MachineId kServerA = 1;    // ThinkPad testbed
inline constexpr MachineId kServerB = 2;
inline constexpr MachineId kFileServer = 9;

struct WorldConfig {
  Testbed testbed = Testbed::kItsy;
  std::uint64_t seed = 1;
  core::SpectraClientConfig spectra;
  // Unrelated files cached on compute servers; they give the status reports
  // realistic bulk (which keeps the passive network monitor current) and
  // the cache-dump interface realistic cost.
  std::size_t background_files = 100;
  // Server count for the kOverhead testbed.
  std::size_t overhead_servers = 0;
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  Testbed testbed() const { return config_.testbed; }
  sim::Engine& engine() { return engine_; }
  net::Network& network() { return *network_; }
  fs::FileServer& file_server() { return *file_server_; }

  hw::Machine& machine(MachineId id);
  hw::Machine& client_machine() { return machine(kClient); }
  fs::CodaClient& coda(MachineId id);
  core::SpectraClient& spectra() { return *spectra_; }
  core::SpectraServer& server(MachineId id);
  // Remote compute servers of this testbed.
  std::vector<MachineId> server_ids() const;

  apps::JanusApp& janus();
  apps::LatexApp& latex();
  apps::PanglossApp& pangloss();

  // ---- fault injection ----------------------------------------------------
  // The injector is wired to every link, server endpoint, and machine of
  // this testbed; arm_faults() schedules a plan's events relative to the
  // current virtual time.
  fault::FaultInjector& fault_injector() { return *fault_injector_; }
  void arm_faults(const fault::FaultPlan& plan) {
    armed_plans_.push_back(plan);
    fault_injector_->arm(plan);
  }

  // ---- cloning ------------------------------------------------------------
  // Deep-copy this world: build a structurally identical fresh world (same
  // config, but observability redirected to `obs`, which may be null),
  // re-arm the same fault plans, copy every component's mutable state, and
  // adopt this world's event schedule. The clone continues from this
  // world's exact virtual time and randomness, so measuring an alternative
  // on a clone is bit-identical to retraining a fresh world and measuring
  // there. Requires a quiescent world (no foreground operation in flight).
  //
  // `prepare` runs on the fresh world after construction but before any
  // state is copied. Worlds whose setup happens outside the constructor
  // (service installs, operation registration — e.g. the kOverhead nullop
  // testbed) must redo that setup here: copy_state_from requires the
  // clone's registered operations to match the source, and RPC handlers
  // are never copied.
  std::unique_ptr<World> clone(
      obs::Observability* obs,
      const std::function<void(World&)>& prepare = {}) const;

  // ---- setup helpers ------------------------------------------------------
  // Cache every application file on every machine, and the background files
  // on the compute servers ("data files are cached on all machines").
  void warm_all_caches();
  // Timed small fetches that seed Coda fetch-rate and passive network
  // bandwidth estimates (a Coda client's background hoard walk).
  void probe_fetch_rates();
  // Let virtual time pass: status polls, monitor refreshes, adaptation.
  void settle(util::Seconds duration);

 private:
  // Clone fast path: build the same structure but skip file-server
  // population (app installs, probe file, background files) — clone()
  // copies the source's file server and Coda caches wholesale right after
  // construction, so populating them first is pure waste. Skipping is
  // rng-safe: the only population step that draws randomness
  // (create_background_files) runs after every fork in build_*, and
  // clone() overwrites rng_ with the source's stream anyway.
  struct SkipFilePopulation {};
  World(WorldConfig config, SkipFilePopulation);
  World(WorldConfig config, bool populate_files);

  void build_itsy();
  void build_thinkpad();
  void build_overhead();
  void add_machine(MachineId id, hw::MachineSpec spec);
  void add_coda(MachineId id, fs::CodaClientConfig cfg);
  void create_background_files();

  const bool populate_files_ = true;
  WorldConfig config_;
  sim::Engine engine_;
  util::Rng rng_;
  std::map<MachineId, std::unique_ptr<hw::Machine>> machines_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<fs::FileServer> file_server_;
  std::map<MachineId, std::unique_ptr<fs::CodaClient>> codas_;
  std::unique_ptr<core::SpectraClient> spectra_;
  std::map<MachineId, std::unique_ptr<core::SpectraServer>> servers_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<apps::JanusApp> janus_;
  std::unique_ptr<apps::LatexApp> latex_;
  std::unique_ptr<apps::PanglossApp> pangloss_;
  // Every plan passed to arm_faults, so a clone can re-arm identically
  // (fault expansion is a pure function of the plan's seed).
  std::vector<fault::FaultPlan> armed_plans_;
};

}  // namespace spectra::scenario
