#include "obs/trace.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.h"

namespace spectra::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  SPECTRA_ENSURE(res.ec == std::errc(), "double formatting failed");
  out.append(buf, res.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  SPECTRA_ENSURE(res.ec == std::errc(), "integer formatting failed");
  out.append(buf, res.ptr);
}

void append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  // Copy runs of clean characters in one append; escape the rare rest.
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) {
      continue;
    }
    out.append(s, start, i - start);
    start = i + 1;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      }
    }
  }
  out.append(s, start, s.size() - start);
  out.push_back('"');
}

}  // namespace

std::string format_double(double v) {
  std::string out;
  append_double(out, v);
  return out;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_quoted(out, s);
  return out;
}

TraceEvent::TraceEvent(std::string_view type, double t) {
  body_.reserve(512);
  body_ += "{\"type\":";
  append_quoted(body_, type);
  body_ += ",\"t\":";
  append_double(body_, t);
}

void TraceEvent::begin_field(std::string_view key) {
  body_ += ',';
  append_quoted(body_, key);
  body_ += ':';
}

TraceEvent& TraceEvent::field(std::string_view key, double v) {
  begin_field(key);
  append_double(body_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t v) {
  begin_field(key);
  append_int(body_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::size_t v) {
  begin_field(key);
  append_int(body_, static_cast<std::int64_t>(v));
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, int v) {
  begin_field(key);
  append_int(body_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool v) {
  begin_field(key);
  body_ += v ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view v) {
  begin_field(key);
  append_quoted(body_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, const char* v) {
  return field(key, std::string_view(v));
}

TraceEvent& TraceEvent::field(std::string_view key,
                              const std::map<std::string, double>& v) {
  begin_field(key);
  body_ += '{';
  bool first = true;
  for (const auto& [k, x] : v) {
    if (!first) body_ += ',';
    first = false;
    append_quoted(body_, k);
    body_ += ':';
    append_double(body_, x);
  }
  body_ += '}';
  return *this;
}

std::string TraceEvent::to_json() const { return body_ + "}"; }

TraceSink::TraceSink(std::ostream& out) : out_(&out) {}

std::unique_ptr<TraceSink> TraceSink::open(const std::string& path,
                                           bool append) {
  const auto mode = append ? (std::ios::out | std::ios::app) : std::ios::out;
  auto file = std::make_unique<std::ofstream>(path, mode);
  SPECTRA_REQUIRE(file->good(), "cannot open trace file: " + path);
  auto sink = std::unique_ptr<TraceSink>(new TraceSink());
  sink->out_ = file.get();
  sink->owned_ = std::move(file);
  return sink;
}

TraceSink::~TraceSink() = default;

void TraceSink::emit(const TraceEvent& event) {
  // Straight to the streambuf: ostream::write pays a sentry (tie/flush
  // checks) per call, which is measurable at one event every few
  // microseconds of simulated decision-making.
  std::streambuf* buf = out_->rdbuf();
  buf->sputn(event.body_.data(),
             static_cast<std::streamsize>(event.body_.size()));
  buf->sputn("}\n", 2);
  ++events_;
}

void TraceSink::write_raw(std::string_view jsonl) {
  if (jsonl.empty()) return;
  std::streambuf* buf = out_->rdbuf();
  buf->sputn(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
  // Count spliced lines so events() stays meaningful after a merge.
  for (char c : jsonl) {
    if (c == '\n') ++events_;
  }
}

void TraceSink::flush() { out_->flush(); }

}  // namespace spectra::obs
