#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/trace.h"
#include "util/assert.h"

namespace spectra::obs {

void Histogram::observe(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  SPECTRA_REQUIRE(!name.empty(), "metric name must be non-empty");
  SPECTRA_REQUIRE(histograms_.count(name) == 0,
                  "metric already registered as a histogram: " + name);
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  SPECTRA_REQUIRE(!name.empty(), "metric name must be non-empty");
  SPECTRA_REQUIRE(counters_.count(name) == 0,
                  "metric already registered as a counter: " + name);
  return histograms_[name];
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) {
    (void)name;
    c.reset();
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h.reset();
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge(h);
  }
}

std::vector<MetricRow> MetricsRegistry::snapshot() const {
  std::vector<MetricRow> rows;
  rows.reserve(size());
  for (const auto& [name, c] : counters_) {
    MetricRow r;
    r.name = name;
    r.type = "counter";
    r.count = c.value();
    r.sum = c.value();
    r.min = r.max = r.mean = c.value();
    rows.push_back(std::move(r));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow r;
    r.name = name;
    r.type = "histogram";
    r.count = static_cast<double>(h.count());
    r.sum = h.sum();
    r.min = h.min();
    r.max = h.max();
    r.mean = h.mean();
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

void MetricsRegistry::export_csv(std::ostream& out) const {
  out << "name,type,count,sum,min,max,mean\n";
  for (const auto& r : snapshot()) {
    out << r.name << ',' << r.type << ',' << format_double(r.count) << ','
        << format_double(r.sum) << ',' << format_double(r.min) << ','
        << format_double(r.max) << ',' << format_double(r.mean) << '\n';
  }
}

void MetricsRegistry::export_jsonl(std::ostream& out) const {
  for (const auto& r : snapshot()) {
    out << "{\"name\":" << json_quote(r.name) << ",\"type\":\"" << r.type
        << "\",\"count\":" << format_double(r.count)
        << ",\"sum\":" << format_double(r.sum)
        << ",\"min\":" << format_double(r.min)
        << ",\"max\":" << format_double(r.max)
        << ",\"mean\":" << format_double(r.mean) << "}\n";
  }
}

void MetricsRegistry::export_to_file(const std::string& path) const {
  std::ofstream out(path);
  SPECTRA_REQUIRE(out.good(), "cannot open metrics file: " + path);
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    export_csv(out);
  } else {
    export_jsonl(out);
  }
  SPECTRA_REQUIRE(out.good(), "failed writing metrics file: " + path);
}

}  // namespace spectra::obs
