// Observability bundle: one MetricsRegistry plus an optional TraceSink.
//
// A single Observability instance is threaded (as a raw, non-owning
// pointer) through SpectraClientConfig into every instrumented component.
// Components null-check once at wiring time, cache Counter*/Histogram*
// handles, and emit trace events only when tracing() is on, so the fully
// disabled path costs one pointer compare per site.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spectra::obs {

class Observability {
 public:
  Observability() = default;
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  bool tracing() const { return trace_ != nullptr; }
  // Null when tracing is off.
  TraceSink* trace() { return trace_.get(); }

  // Route trace events to `out` (non-owning; `out` must outlive this).
  void trace_to(std::ostream& out) {
    trace_ = std::make_unique<TraceSink>(out);
  }
  // Route trace events to a file (owning). Throws util::ContractError when
  // the file cannot be opened.
  void trace_to_file(const std::string& path) { trace_ = TraceSink::open(path); }

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> trace_;
};

}  // namespace spectra::obs
