#include "obs/memaudit.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spectra::obs {
namespace {

constexpr unsigned kScopes = static_cast<unsigned>(MemScopeId::kCount);

// Zero-initialized PODs: safe to touch from any allocation, including ones
// made before static constructors run.
std::atomic<long long> g_live[kScopes];
std::atomic<unsigned long long> g_allocs[kScopes];
std::atomic<unsigned long long> g_frees[kScopes];
std::atomic<long long> g_live_total;
std::atomic<unsigned long long> g_peak_live;

// Scope active on this thread. Plain integral thread_local: constant
// initialization, so reading it never allocates.
thread_local unsigned t_scope = 0;

#if defined(SPECTRA_MEMAUDIT)

// Every tracked block carries this header immediately before the payload.
// 16 bytes, max_align_t-aligned, so payload alignment is preserved for
// ordinary (non-overaligned) allocations; overaligned requests pad further
// and record the payload-to-raw offset.
struct alignas(std::max_align_t) Header {
  std::uint64_t size;    // requested bytes, scope packed in the top byte
  std::uint32_t offset;  // payload minus raw malloc pointer
  std::uint32_t magic;
};
static_assert(sizeof(Header) == 16, "audit header must stay 16 bytes");

constexpr std::uint32_t kMagic = 0x53414d41u;
constexpr std::uint64_t kSizeMask = (1ull << 56) - 1;

void track(unsigned scope, std::size_t bytes) {
  g_live[scope].fetch_add(static_cast<long long>(bytes),
                          std::memory_order_relaxed);
  g_allocs[scope].fetch_add(1, std::memory_order_relaxed);
  const long long total =
      g_live_total.fetch_add(static_cast<long long>(bytes),
                             std::memory_order_relaxed) +
      static_cast<long long>(bytes);
  unsigned long long peak = g_peak_live.load(std::memory_order_relaxed);
  while (total > 0 && static_cast<unsigned long long>(total) > peak &&
         !g_peak_live.compare_exchange_weak(
             peak, static_cast<unsigned long long>(total),
             std::memory_order_relaxed)) {
  }
}

void untrack(unsigned scope, std::size_t bytes) {
  g_live[scope].fetch_sub(static_cast<long long>(bytes),
                          std::memory_order_relaxed);
  g_frees[scope].fetch_add(1, std::memory_order_relaxed);
  g_live_total.fetch_sub(static_cast<long long>(bytes),
                         std::memory_order_relaxed);
}

void* audit_alloc(std::size_t bytes, std::size_t align) noexcept {
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  // Room for the header plus worst-case alignment padding.
  void* raw = std::malloc(bytes + align + sizeof(Header));
  if (raw == nullptr) return nullptr;
  const auto base = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t payload =
      (base + sizeof(Header) + align - 1) & ~(align - 1);
  auto* hdr = reinterpret_cast<Header*>(payload - sizeof(Header));
  const unsigned scope = t_scope < kScopes ? t_scope : 0;
  hdr->size = (static_cast<std::uint64_t>(bytes) & kSizeMask) |
              (static_cast<std::uint64_t>(scope) << 56);
  hdr->offset = static_cast<std::uint32_t>(payload - base);
  hdr->magic = kMagic;
  track(scope, bytes);
  return reinterpret_cast<void*>(payload);
}

void audit_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* hdr = reinterpret_cast<Header*>(static_cast<std::byte*>(p) -
                                        sizeof(Header));
  if (hdr->magic != kMagic) {
    // Not one of ours (malloc'd memory fed to delete — already UB, but
    // match the behavior the default operator delete would have had).
    std::free(p);
    return;
  }
  hdr->magic = 0;
  untrack(static_cast<unsigned>(hdr->size >> 56),
          static_cast<std::size_t>(hdr->size & kSizeMask));
  std::free(static_cast<std::byte*>(p) - hdr->offset);
}

void* audit_alloc_or_throw(std::size_t bytes, std::size_t align) {
  void* p = audit_alloc(bytes, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

#endif  // SPECTRA_MEMAUDIT

}  // namespace

const char* to_string(MemScopeId scope) {
  switch (scope) {
    case MemScopeId::kOther: return "other";
    case MemScopeId::kScenario: return "scenario";
    case MemScopeId::kFleetWorld: return "fleet_world";
    case MemScopeId::kFleetTick: return "fleet_tick";
    case MemScopeId::kCount: break;
  }
  return "unknown";
}

bool memaudit_enabled() {
#if defined(SPECTRA_MEMAUDIT)
  return true;
#else
  return false;
#endif
}

MemCounters memaudit_scope(MemScopeId scope) {
  const auto i = static_cast<unsigned>(scope);
  if (i >= kScopes) return {};
  MemCounters c;
  c.live_bytes = g_live[i].load(std::memory_order_relaxed);
  c.allocs = g_allocs[i].load(std::memory_order_relaxed);
  c.frees = g_frees[i].load(std::memory_order_relaxed);
  return c;
}

MemCounters memaudit_total() {
  MemCounters c;
  for (unsigned i = 0; i < kScopes; ++i) {
    c.live_bytes += g_live[i].load(std::memory_order_relaxed);
    c.allocs += g_allocs[i].load(std::memory_order_relaxed);
    c.frees += g_frees[i].load(std::memory_order_relaxed);
  }
  return c;
}

long long memaudit_live_bytes() {
  return g_live_total.load(std::memory_order_relaxed);
}

unsigned long long memaudit_peak_live_bytes() {
  return g_peak_live.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KB on Linux
#endif
#else
  return 0;
#endif
}

MemScope::MemScope(MemScopeId scope) : prev_(t_scope) {
  t_scope = static_cast<unsigned>(scope);
}

MemScope::~MemScope() { t_scope = prev_; }

}  // namespace spectra::obs

#if defined(SPECTRA_MEMAUDIT)

// Replacement global allocation functions. Defining any of these in a
// program replaces the library versions for the whole binary (every TU),
// so new/delete pairs always agree about the header. They live in this TU
// next to the counters they feed; any binary that links a memaudit symbol
// pulls them in.

void* operator new(std::size_t n) {
  return spectra::obs::audit_alloc_or_throw(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n) {
  return spectra::obs::audit_alloc_or_throw(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a) {
  return spectra::obs::audit_alloc_or_throw(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return spectra::obs::audit_alloc_or_throw(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return spectra::obs::audit_alloc(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return spectra::obs::audit_alloc(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  return spectra::obs::audit_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  return spectra::obs::audit_alloc(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { spectra::obs::audit_free(p); }
void operator delete[](void* p) noexcept { spectra::obs::audit_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  spectra::obs::audit_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  spectra::obs::audit_free(p);
}

#endif  // SPECTRA_MEMAUDIT
