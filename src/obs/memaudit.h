// Memory audit: peak RSS plus per-subsystem live-byte/allocation counters.
//
// The fleet-scale work is a memory diet, and a diet needs a scale. This
// layer provides two instruments:
//
//   * peak_rss_bytes() — the OS view (getrusage), for bytes-per-client
//     numbers in BENCH_fleet.json and the fleet_mem_ceiling check gate.
//
//   * a tracking allocator hook — replacement global operator new/delete
//     that tag every allocation with a 16-byte header recording its size
//     and the subsystem scope active on the allocating thread. Frees read
//     the header back, so live bytes are attributed exactly, even when a
//     block is freed from a different thread or scope. Scopes nest via the
//     RAII MemScope guard (thread-local, so parallel island workers
//     attribute independently).
//
// The hook is compiled in when SPECTRA_MEMAUDIT is defined (the default
// build; sanitizer builds turn it off so ASan/TSan keep their own
// allocator interposition). When disabled every query returns zeros and
// memaudit_enabled() is false — tests that assert allocation counts skip
// themselves.
//
// The counters are relaxed atomics: totals are exact once threads join
// (the executor barriers before anything reads them), and the per-tick
// allocation-free assertion runs on sequential worlds where ordering is
// trivial. Counts are *allocator traffic*, not RSS: they exclude the
// 16-byte audit header and malloc's own bookkeeping.
#pragma once

#include <cstdint>

namespace spectra::obs {

// Attribution scopes. kOther is everything outside an explicit scope.
enum class MemScopeId : unsigned {
  kOther = 0,
  kScenario,    // FleetScenario generation (profiles, schedules)
  kFleetWorld,  // FleetWorld construction/clone (SoA state, pools)
  kFleetTick,   // island tick + barrier exchange — the hot loop; steady
                // state must allocate nothing here (FleetAllocationFree)
  kCount
};

const char* to_string(MemScopeId scope);

struct MemCounters {
  long long live_bytes = 0;           // allocated minus freed, attributed
  unsigned long long allocs = 0;      // operator new calls
  unsigned long long frees = 0;       // operator delete calls
};

// Whether the tracking hook is compiled into this binary.
bool memaudit_enabled();

MemCounters memaudit_scope(MemScopeId scope);
MemCounters memaudit_total();        // sum over all scopes
long long memaudit_live_bytes();     // total live bytes right now
// High-water mark of total live bytes since process start.
unsigned long long memaudit_peak_live_bytes();

// Peak resident set size of this process, in bytes (getrusage; 0 when the
// platform does not report it).
std::uint64_t peak_rss_bytes();

// RAII scope guard: allocations on this thread are attributed to `scope`
// until the guard dies (restores the previous scope, so guards nest).
class MemScope {
 public:
  explicit MemScope(MemScopeId scope);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  unsigned prev_;
};

}  // namespace spectra::obs
