// Structured trace sink: JSONL events keyed by deterministic virtual time.
//
// Every event is one JSON object on one line, fields in insertion order,
// beginning with the event type and the virtual timestamp it occurred at.
// Doubles are formatted with std::to_chars (shortest round-trip), so the
// byte stream of a seeded run is a pure function of the simulation — two
// replays of the same seed produce bit-identical traces, extending the
// deterministic-replay guarantee to the observability layer. Events must
// therefore never carry wall-clock quantities; those belong in metrics.
//
// Events are built by appending into one pre-reserved buffer (no
// per-field temporaries), keeping the decision hot path cheap enough that
// tracing a null operation stays within a few percent of the plain run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace spectra::obs {

// Shortest round-trip decimal representation of `v` (std::to_chars).
std::string format_double(double v);
// `s` as a quoted JSON string (escapes quotes, backslashes, control chars).
std::string json_quote(std::string_view s);

// Builder for one trace event. Fields render in insertion order.
class TraceEvent {
 public:
  // `t` is the virtual time the event occurred at.
  TraceEvent(std::string_view type, double t);

  TraceEvent& field(std::string_view key, double v);
  TraceEvent& field(std::string_view key, std::int64_t v);
  TraceEvent& field(std::string_view key, std::size_t v);
  TraceEvent& field(std::string_view key, int v);
  TraceEvent& field(std::string_view key, bool v);
  TraceEvent& field(std::string_view key, std::string_view v);
  // Without this overload a string literal would prefer the bool
  // conversion over the user-defined one to string_view.
  TraceEvent& field(std::string_view key, const char* v);
  // Nested object of numeric values (e.g. a fidelity vector); keys render
  // in map order, which is deterministic.
  TraceEvent& field(std::string_view key,
                    const std::map<std::string, double>& v);

  // The complete single-line JSON object (no trailing newline).
  std::string to_json() const;

 private:
  friend class TraceSink;
  void begin_field(std::string_view key);
  std::string body_;  // "{"type":...,"t":...,..." without the closing brace
};

// A private JSONL buffer for one deterministic trace shard. Parallel code
// paths (per-client pipelines, island fault streams) render events into
// their own shard — single writer, no locks — and the shards are spliced
// into the session TraceSink in a fixed index order once the parallel
// phase is over, so the merged byte stream is independent of --jobs.
class TraceShard {
 public:
  void emit(const TraceEvent& event) {
    buf_ += event.to_json();
    buf_ += '\n';
  }

  bool empty() const { return buf_.empty(); }
  // The rendered newline-terminated lines, for splicing or inspection.
  const std::string& bytes() const { return buf_; }
  void clear() { buf_.clear(); }

 private:
  std::string buf_;
};

class TraceSink {
 public:
  // Non-owning: events append to `out`, which must outlive the sink.
  explicit TraceSink(std::ostream& out);
  // Owning: opens `path` for writing (truncates); throws
  // util::ContractError when the file cannot be opened. With `append`
  // existing contents are preserved and new lines glue onto the end —
  // the serve daemon uses this to continue a write-ahead log across a
  // crash/restart without losing the replayed history.
  static std::unique_ptr<TraceSink> open(const std::string& path,
                                         bool append = false);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Write one event as a JSONL line.
  void emit(const TraceEvent& event);

  // Append pre-rendered JSONL verbatim (already newline-terminated lines).
  // Used by the batch runner to splice per-run trace buffers into the
  // session trace in deterministic run order.
  void write_raw(std::string_view jsonl);

  // Push buffered bytes to the underlying stream. Write-ahead-log users
  // flush after every committed line so a SIGKILL loses at most the line
  // being written, never an acknowledged one.
  void flush();

  std::size_t events() const { return events_; }

 private:
  TraceSink() = default;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::size_t events_ = 0;
};

}  // namespace spectra::obs
