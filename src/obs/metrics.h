// Metrics registry for the decision-pipeline observability layer.
//
// Counters and histograms are registered lazily by name; handles returned
// by counter()/histogram() are stable for the registry's lifetime, so hot
// paths resolve a metric once at wiring time and increment through the
// pointer with no per-event name lookup. The registry is single-threaded
// like the rest of the simulation.
//
// Snapshots order metrics by name, so exports are deterministic. Counter
// values and histogram sample statistics over virtual-time quantities are
// bit-identical across replays of a seeded run; wall-clock histograms
// (decision latency, per-phase wall time) are the only nondeterministic
// content and live solely in metrics exports, never in traces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace spectra::obs {

// Monotonically increasing sum (counts, bytes, evaluations...).
class Counter {
 public:
  void add(double n = 1.0) { value_ += n; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Streaming sample statistics: count/sum/min/max/mean. Bounded memory —
// samples are folded in, never stored.
class Histogram {
 public:
  void observe(double x);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const;
  void reset() { *this = Histogram{}; }

  // Fold another histogram's samples into this one. Count/sum/min/max
  // combine exactly; order of merges does not affect the result.
  void merge(const Histogram& other);

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One exported metric, flattened for rendering.
struct MetricRow {
  std::string name;
  std::string type;  // "counter" or "histogram"
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

class MetricsRegistry {
 public:
  // Fetch-or-create. A name registered as one kind cannot be reused as the
  // other (throws util::ContractError).
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Read-only lookup; null when the metric was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const { return counters_.size() + histograms_.size(); }

  // Zero every metric, keeping registrations (and thus handles) alive.
  void reset();

  // Fold `other` into this registry: counters sum, histograms combine,
  // metrics absent here are registered. Used to roll per-worker registries
  // up into the session registry after a batch fan-out, so the hot path
  // never takes a lock. Throws util::ContractError when a name is a
  // counter on one side and a histogram on the other.
  void merge(const MetricsRegistry& other);

  // All metrics, sorted by name (counters interleaved with histograms).
  std::vector<MetricRow> snapshot() const;

  // Exports. CSV: header + one row per metric. JSONL: one object per line.
  void export_csv(std::ostream& out) const;
  void export_jsonl(std::ostream& out) const;
  // Writes CSV when `path` ends in ".csv", JSONL otherwise. Throws
  // util::ContractError when the file cannot be opened.
  void export_to_file(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace spectra::obs
