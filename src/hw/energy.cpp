#include "hw/energy.h"

#include <cmath>

#include "util/assert.h"

namespace spectra::hw {

void EnergyMeter::integrate() {
  const Seconds now = engine_.now();
  if (now > last_t_) {
    total_ += power_ * (now - last_t_);
    last_t_ = now;
  }
}

void EnergyMeter::set_power(Watts p) {
  integrate();
  power_ = p;
}

Joules EnergyMeter::total_consumed() {
  integrate();
  return total_;
}

AcpiDriver::AcpiDriver(sim::Engine& engine, EnergyMeter& meter, Joules quantum,
                       Seconds refresh_period)
    : engine_(engine),
      meter_(meter),
      quantum_(quantum),
      refresh_period_(refresh_period) {}

Joules AcpiDriver::read_consumed() {
  const Seconds now = engine_.now();
  if (last_refresh_ < 0.0 || now - last_refresh_ >= refresh_period_) {
    cached_ = std::floor(meter_.total_consumed() / quantum_) * quantum_;
    last_refresh_ = now;
  }
  return cached_;
}

void AcpiDriver::copy_state_from(const EnergyDriver& src) {
  const auto* acpi = dynamic_cast<const AcpiDriver*>(&src);
  SPECTRA_REQUIRE(acpi != nullptr, "driver type mismatch in copy_state_from");
  last_refresh_ = acpi->last_refresh_;
  cached_ = acpi->cached_;
}

SmartBatteryDriver::SmartBatteryDriver(sim::Engine& engine, EnergyMeter& meter,
                                       Joules quantum)
    : engine_(engine), meter_(meter), quantum_(quantum) {
  (void)engine_;
}

Joules SmartBatteryDriver::read_consumed() {
  return std::floor(meter_.total_consumed() / quantum_) * quantum_;
}

}  // namespace spectra::hw
