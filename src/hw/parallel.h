// Overlapped execution of CPU work on multiple machines.
//
// The paper's execution model is strictly sequential ("does not allow
// computation and network transmission to overlap", §3.6) and names
// parallel execution plans as future work: "the three engines could be
// executed in parallel on different servers" (§4.3). run_parallel is the
// simulation primitive that extension builds on: it starts every piece of
// work at the same virtual instant, lets each machine finish after its own
// duration (scheduling an end event so power accounting is exact — a
// machine that finishes early idles while the stragglers run), and advances
// the clock by the maximum duration.
#pragma once

#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "util/units.h"

namespace spectra::hw {

struct ParallelWork {
  Machine* machine = nullptr;
  util::Cycles cycles = 0.0;
  bool fp_heavy = false;
};

// Execute all pieces concurrently; returns the elapsed (maximum) duration.
// Multiple pieces may target the same machine; they time-share it, which is
// modeled conservatively by running that machine's pieces back to back.
util::Seconds run_parallel(sim::Engine& engine,
                           const std::vector<ParallelWork>& work);

}  // namespace spectra::hw
