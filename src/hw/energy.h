// Energy metering.
//
// EnergyMeter integrates a machine's power draw over virtual time. Spectra
// never reads the meter directly: it reads through an EnergyDriver, which
// models the measurement modality available on each platform (SmartBattery
// chip on the Itsy, ACPI on newer laptops, an external multimeter for the
// 560X, which has no power instrumentation). Drivers quantize and lag the
// true value, so Spectra's energy models are learned from realistic,
// imperfect measurements — as in the paper.
#pragma once

#include <memory>
#include <string>

#include "sim/engine.h"
#include "util/units.h"

namespace spectra::hw {

using util::Joules;
using util::Seconds;
using util::Watts;

class EnergyMeter {
 public:
  explicit EnergyMeter(sim::Engine& engine) : engine_(engine) {}

  // Update the instantaneous power draw; integrates the previous draw up to
  // the current virtual time first.
  void set_power(Watts p);

  // True cumulative energy consumed since construction.
  Joules total_consumed();

  Watts current_power() const { return power_; }

  // Copy the integration state from a meter attached to another engine.
  // Copies raw members only — never calls total_consumed() (which
  // integrates), so many clones may copy from one shared const template
  // concurrently without racing.
  void copy_state_from(const EnergyMeter& src) {
    power_ = src.power_;
    last_t_ = src.last_t_;
    total_ = src.total_;
  }

 private:
  void integrate();

  sim::Engine& engine_;
  Watts power_ = 0.0;
  Seconds last_t_ = 0.0;
  Joules total_ = 0.0;
};

// Measurement interface through which monitors observe energy.
class EnergyDriver {
 public:
  virtual ~EnergyDriver() = default;

  // Name of the measurement methodology ("acpi", "smart_battery", ...).
  virtual const std::string& name() const = 0;

  // Cumulative energy consumed as reported by this instrument.
  virtual Joules read_consumed() = 0;

  // Copy mutable measurement state (caches, refresh timestamps) from a
  // same-type driver in another world. Stateless drivers need no override.
  virtual void copy_state_from(const EnergyDriver& /*src*/) {}
};

// ACPI battery interface: reports in coarse mWh quanta and refreshes its
// reading at a bounded rate.
class AcpiDriver : public EnergyDriver {
 public:
  AcpiDriver(sim::Engine& engine, EnergyMeter& meter,
             Joules quantum = 3.6 /* 1 mWh */,
             Seconds refresh_period = 0.25);

  const std::string& name() const override { return name_; }
  Joules read_consumed() override;
  void copy_state_from(const EnergyDriver& src) override;

 private:
  std::string name_ = "acpi";
  sim::Engine& engine_;
  EnergyMeter& meter_;
  Joules quantum_;
  Seconds refresh_period_;
  Seconds last_refresh_ = -1.0;
  Joules cached_ = 0.0;
};

// SmartBattery chip: finer quanta, fast refresh.
class SmartBatteryDriver : public EnergyDriver {
 public:
  SmartBatteryDriver(sim::Engine& engine, EnergyMeter& meter,
                     Joules quantum = 0.5);

  const std::string& name() const override { return name_; }
  Joules read_consumed() override;

 private:
  std::string name_ = "smart_battery";
  sim::Engine& engine_;
  EnergyMeter& meter_;
  Joules quantum_;
};

// External multimeter: effectively exact (used for the 560X experiments).
class MultimeterDriver : public EnergyDriver {
 public:
  explicit MultimeterDriver(EnergyMeter& meter) : meter_(meter) {}

  const std::string& name() const override { return name_; }
  Joules read_consumed() override { return meter_.total_consumed(); }

 private:
  std::string name_ = "multimeter";
  EnergyMeter& meter_;
};

}  // namespace spectra::hw
