#include "hw/machine.h"

#include <algorithm>
#include <cmath>

namespace spectra::hw {

Battery::Battery(EnergyMeter& meter, util::Joules capacity)
    : meter_(meter), capacity_(capacity) {
  SPECTRA_REQUIRE(capacity > 0.0, "battery capacity must be positive");
  consumed_at_install_ = meter_.total_consumed();
}

util::Joules Battery::remaining() {
  const util::Joules drained =
      meter_.total_consumed() - consumed_at_install_ + cliff_drain_;
  return std::max(0.0, capacity_ - drained);
}

double Battery::fraction_remaining() { return remaining() / capacity_; }

void Battery::drain_to_fraction(double fraction) {
  SPECTRA_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                  "battery fraction must be in [0,1]");
  const util::Joules target = capacity_ * fraction;
  const util::Joules current = remaining();
  if (current > target) cliff_drain_ += current - target;
}

Machine::Machine(sim::Engine& engine, MachineSpec spec, util::Rng rng)
    : engine_(engine), spec_(std::move(spec)), rng_(rng), meter_(engine) {
  SPECTRA_REQUIRE(spec_.cpu_hz > 0.0, "machine needs a positive CPU speed");
  SPECTRA_REQUIRE(spec_.fp_penalty >= 1.0, "fp_penalty must be >= 1");
  if (spec_.battery_capacity_j) {
    battery_ = std::make_unique<Battery>(meter_, *spec_.battery_capacity_j);
  }
  update_power();
}

util::Seconds Machine::estimate_duration(Cycles cycles, bool fp_heavy) const {
  SPECTRA_REQUIRE(cycles >= 0.0, "negative cycle count");
  const double penalty = fp_heavy ? spec_.fp_penalty : 1.0;
  return cycles * penalty / available_hz();
}

util::Seconds Machine::run_cycles(Cycles cycles, bool fp_heavy) {
  const util::Seconds dt = estimate_duration(cycles, fp_heavy);
  begin_foreground(cycles, fp_heavy);
  engine_.advance(dt);
  end_foreground();
  return dt;
}

void Machine::begin_foreground(Cycles cycles_to_account, bool fp_heavy) {
  SPECTRA_REQUIRE(cycles_to_account >= 0.0, "negative cycle count");
  cycles_executed_ +=
      cycles_to_account * (fp_heavy ? spec_.fp_penalty : 1.0);
  ++foreground_running_;
  update_power();
}

void Machine::end_foreground() {
  SPECTRA_REQUIRE(foreground_running_ > 0,
                  "end_foreground without begin_foreground");
  --foreground_running_;
  update_power();
}

void Machine::set_background_procs(double n) {
  SPECTRA_REQUIRE(n >= 0.0, "background process count must be >= 0");
  background_procs_ = n;
  update_power();
}

double Machine::sample_run_queue() {
  // An observer sees instantaneous queue length with sampling jitter.
  const double noise = rng_.normal(0.0, 0.05);
  return std::max(0.0, background_procs_ + noise);
}

void Machine::set_net_active(bool active) {
  net_active_ = active;
  update_power();
}

void Machine::set_on_battery(bool on) { on_battery_ = on; }

void Battery::copy_state_from(const Battery& src) {
  SPECTRA_REQUIRE(capacity_ == src.capacity_,
                  "battery capacity mismatch in copy_state_from");
  consumed_at_install_ = src.consumed_at_install_;
  cliff_drain_ = src.cliff_drain_;
}

void Machine::copy_state_from(const Machine& src) {
  SPECTRA_REQUIRE(spec_.name == src.spec_.name,
                  "machine mismatch in copy_state_from");
  SPECTRA_REQUIRE(src.foreground_running_ == 0,
                  "cannot copy a machine with an operation in flight");
  rng_ = src.rng_;
  meter_.copy_state_from(src.meter_);
  SPECTRA_REQUIRE((battery_ == nullptr) == (src.battery_ == nullptr),
                  "battery presence mismatch in copy_state_from");
  if (battery_ != nullptr) battery_->copy_state_from(*src.battery_);
  background_procs_ = src.background_procs_;
  cycles_executed_ = src.cycles_executed_;
  foreground_running_ = src.foreground_running_;
  net_active_ = src.net_active_;
  on_battery_ = src.on_battery_;
  // meter_ already carries src's power draw; no update_power() — it would
  // integrate at this world's (already equal) clock, a harmless but
  // unnecessary wobble if the clocks ever diverged mid-clone.
}

void Machine::update_power() {
  // CPU utilization: saturated whenever a foreground op or at least one
  // CPU-bound background process runs; fractional background loads model
  // partially-busy machines.
  double util = std::min(1.0, background_procs_);
  if (foreground_running_ > 0) util = 1.0;
  meter_.set_power(spec_.power.draw(util, net_active_));
}

}  // namespace spectra::hw
