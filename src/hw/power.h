// Per-machine power model.
//
// Power draw is decomposed the way the paper's measurement studies (Flinn &
// Satyanarayanan, SOSP'99) decompose it: a base/idle draw, an additional draw
// proportional to CPU utilization, and an additional draw while the network
// interface is actively transmitting or receiving. Only relative magnitudes
// matter for placement decisions; the defaults in scenario/ are calibrated to
// reproduce the paper's orderings (e.g. remote speech execution costs the
// Itsy less energy than hybrid, which costs far less than local).
#pragma once

#include "util/units.h"

namespace spectra::hw {

struct PowerModel {
  util::Watts idle_w = 0.0;      // drawn whenever the machine is on
  util::Watts cpu_w = 0.0;       // additional at 100% CPU utilization
  util::Watts net_w = 0.0;       // additional while the NIC is active

  util::Watts draw(double cpu_utilization, bool net_active) const {
    double p = idle_w + cpu_w * cpu_utilization;
    if (net_active) p += net_w;
    return p;
  }
};

}  // namespace spectra::hw
