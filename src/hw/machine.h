// Machine model: CPU execution under fair-share scheduling, power states,
// energy metering, and (optionally) a battery.
//
// A Machine does not own threads; "executing" work means advancing the
// shared simulation clock by the modeled duration while the machine's power
// state reflects a busy CPU. Background load is expressed as a number of
// competing CPU-bound processes; a foreground operation receives a fair
// share 1/(1+n) of the processor, matching the prediction model the paper
// inherits from Narayanan et al.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/energy.h"
#include "hw/power.h"
#include "sim/engine.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/units.h"

namespace spectra::hw {

using util::Cycles;
using util::Hertz;

using MachineId = int;

struct MachineSpec {
  std::string name;
  Hertz cpu_hz = 0.0;
  // Multiplier applied to floating-point-heavy work on processors without
  // hardware FP (the Itsy's SA-1100 emulates FP in software; the paper
  // attributes the 3-9x local slowdown of Janus to this).
  double fp_penalty = 1.0;
  PowerModel power;
  // Battery capacity if battery-powered; nullopt for wall-powered machines.
  std::optional<util::Joules> battery_capacity_j;
};

class Battery {
 public:
  Battery(EnergyMeter& meter, util::Joules capacity);

  util::Joules capacity() const { return capacity_; }
  util::Joules remaining();
  double fraction_remaining();

  // Instantaneously drop the charge to `fraction` of capacity (a battery
  // cliff: cell ageing, a misreporting gauge, sudden load). No-op if the
  // battery already holds less.
  void drain_to_fraction(double fraction);

  // Copy charge-accounting state from a same-capacity battery whose meter
  // belongs to another world.
  void copy_state_from(const Battery& src);

 private:
  EnergyMeter& meter_;
  util::Joules capacity_;
  util::Joules consumed_at_install_;
  util::Joules cliff_drain_ = 0.0;  // extra drain imposed by faults
};

class Machine {
 public:
  Machine(sim::Engine& engine, MachineSpec spec, util::Rng rng);

  const MachineSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  sim::Engine& engine() { return engine_; }

  // --- CPU ------------------------------------------------------------
  // Execute `cycles` of work, advancing virtual time. `fp_heavy` work pays
  // the spec's FP-emulation penalty. Returns the elapsed duration.
  util::Seconds run_cycles(Cycles cycles, bool fp_heavy = false);

  // Low-level foreground bracketing for overlapped execution (see
  // hw::run_parallel): marks the CPU busy/idle for power accounting and
  // charges the per-process cycle counter, without advancing the clock.
  void begin_foreground(Cycles cycles_to_account, bool fp_heavy = false);
  void end_foreground();

  // Duration `run_cycles` would take right now, without executing.
  util::Seconds estimate_duration(Cycles cycles, bool fp_heavy = false) const;

  // Cumulative foreground cycles executed via run_cycles; the per-process
  // accounting (/proc-style) that server-side usage measurement reads.
  Cycles cycles_executed() const { return cycles_executed_; }

  // Number of competing CPU-bound background processes.
  void set_background_procs(double n);
  double background_procs() const { return background_procs_; }

  // Fraction of the CPU a new foreground process would receive.
  double fair_share() const { return 1.0 / (1.0 + background_procs_); }

  // Sampled run-queue length as an OS utility (top, /proc/loadavg) would
  // report it: ground truth plus small observation noise, >= 0. This is what
  // the CPU monitor consumes — it never sees `background_procs()` directly.
  double sample_run_queue();

  // Effective cycles/second currently available to a foreground operation.
  Hertz available_hz() const { return spec_.cpu_hz * fair_share(); }

  // --- Power / energy ---------------------------------------------------
  // The NIC-active flag is set by the network layer for the duration of
  // transfers that involve this machine.
  void set_net_active(bool active);
  bool net_active() const { return net_active_; }

  EnergyMeter& meter() { return meter_; }
  Battery* battery() { return battery_ ? battery_.get() : nullptr; }

  // Whether the machine currently runs on battery (scenarios toggle this;
  // wall-powered machines report false regardless of battery presence).
  void set_on_battery(bool on);
  bool on_battery() const { return on_battery_ && battery_ != nullptr; }

  // Copy all mutable state (rng, meter, battery, load, counters) from the
  // same machine in another world. Structure (spec, battery presence) must
  // match; no operation may be in flight on either side.
  void copy_state_from(const Machine& src);

 private:
  void update_power();

  sim::Engine& engine_;
  MachineSpec spec_;
  util::Rng rng_;
  EnergyMeter meter_;
  std::unique_ptr<Battery> battery_;
  double background_procs_ = 0.0;
  Cycles cycles_executed_ = 0.0;
  int foreground_running_ = 0;
  bool net_active_ = false;
  bool on_battery_ = false;
};

}  // namespace spectra::hw
