#include "hw/parallel.h"

#include <algorithm>
#include <map>

#include "util/assert.h"

namespace spectra::hw {

util::Seconds run_parallel(sim::Engine& engine,
                           const std::vector<ParallelWork>& work) {
  if (work.empty()) return 0.0;

  // Serialize pieces that share a machine: per machine, total duration is
  // the sum of its pieces (one CPU), and the busy interval is contiguous.
  struct PerMachine {
    Machine* machine = nullptr;
    util::Cycles cycles = 0.0;       // for accounting
    util::Seconds duration = 0.0;
  };
  std::map<Machine*, PerMachine> merged;
  for (const auto& w : work) {
    SPECTRA_REQUIRE(w.machine != nullptr, "parallel work needs a machine");
    SPECTRA_REQUIRE(w.cycles >= 0.0, "negative cycle count");
    auto& pm = merged[w.machine];
    pm.machine = w.machine;
    pm.cycles +=
        w.cycles * (w.fp_heavy ? w.machine->spec().fp_penalty : 1.0);
    pm.duration += w.machine->estimate_duration(w.cycles, w.fp_heavy);
  }

  util::Seconds max_duration = 0.0;
  for (auto& [machine, pm] : merged) {
    (void)machine;
    max_duration = std::max(max_duration, pm.duration);
  }

  // Start everything now; each machine goes idle when its own work ends.
  for (auto& [machine, pm] : merged) {
    machine->begin_foreground(pm.cycles, /*fp_heavy=*/false);
    Machine* m = machine;
    engine.schedule_after(pm.duration, [m] { m->end_foreground(); });
  }
  engine.advance(max_duration);
  return max_duration;
}

}  // namespace spectra::hw
