// Discrete-event simulation engine.
//
// Everything in the reproduction testbed — machines, network transfers, file
// fetches, Spectra's own decision overhead — advances a single virtual clock
// owned by an Engine. Application execution is modeled as a sequence of
// timed activities; periodic behaviours (server status polling, battery
// sampling, load smoothing) are scheduled events that fire as the clock
// sweeps past them.
//
// The engine is deliberately single-threaded and deterministic: events with
// equal timestamps fire in scheduling order, so a seeded scenario replays
// bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/assert.h"
#include "util/units.h"

namespace spectra::sim {

using util::Seconds;

using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Seconds now() const { return now_; }

  // Schedule `fn` to run at absolute virtual time `t` (>= now). An optional
  // `tag` (unique among pending events) names the event so adopt_schedule()
  // can rebind it in a cloned world; transient events may leave it empty.
  EventId schedule_at(Seconds t, std::function<void()> fn,
                      std::string tag = {});

  // Schedule `fn` to run `dt` seconds from now.
  EventId schedule_after(Seconds dt, std::function<void()> fn,
                         std::string tag = {});

  // Schedule `fn` every `interval` seconds, first firing after one interval.
  // Returns an id usable with cancel(); the periodic event keeps rescheduling
  // itself under the same id.
  EventId schedule_periodic(Seconds interval, std::function<void()> fn,
                            std::string tag = {});

  // Cancel a pending (or periodic) event. Cancelling an already-fired
  // one-shot event is a harmless no-op.
  void cancel(EventId id);

  // Advance the clock by `dt`, firing every event due in (now, now+dt] in
  // timestamp order. Events may schedule further events, including ones due
  // within the same window.
  void advance(Seconds dt);

  // Advance the clock to absolute time `t` (no-op if t <= now).
  void run_until(Seconds t);

  // Fire all pending events in order, advancing the clock to each; stops
  // when the queue is empty or `max_events` have fired. Used by tests and by
  // world teardown to drain periodic tasks is NOT desired — periodic events
  // reschedule forever, so this respects `horizon`.
  void drain(Seconds horizon, std::size_t max_events = 1'000'000);

  std::size_t pending_events() const;

  // Make this engine's schedule an exact replica of `src`'s. Every live
  // pending event in `src` must be tagged and must have a same-tag
  // counterpart already registered on this engine (the counterpart supplies
  // the callback, which closes over this engine's own world); the
  // counterpart's entry is rescheduled at src's exact (t, seq, id, period).
  // Tagged events registered here with no pending src counterpart are
  // dropped, matching a fired or cancelled event in src. Clock and id/seq
  // counters are copied, so the replica fires bit-identically to src.
  void adopt_schedule(const Engine& src);

 private:
  struct Entry {
    Seconds t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  struct Record {
    std::function<void()> fn;
    Seconds period = 0.0;  // >0 for periodic events
    std::string tag;
  };

  void fire(const Entry& e);

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, Record> records_;
};

}  // namespace spectra::sim
