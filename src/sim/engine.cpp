#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace spectra::sim {

EventId Engine::schedule_at(Seconds t, std::function<void()> fn) {
  SPECTRA_REQUIRE(t >= now_, "cannot schedule an event in the past");
  SPECTRA_REQUIRE(fn != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  records_[id] = Record{std::move(fn), 0.0};
  queue_.push(Entry{t, next_seq_++, id});
  return id;
}

EventId Engine::schedule_after(Seconds dt, std::function<void()> fn) {
  SPECTRA_REQUIRE(dt >= 0.0, "negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

EventId Engine::schedule_periodic(Seconds interval, std::function<void()> fn) {
  SPECTRA_REQUIRE(interval > 0.0, "periodic interval must be positive");
  SPECTRA_REQUIRE(fn != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  records_[id] = Record{std::move(fn), interval};
  queue_.push(Entry{now_ + interval, next_seq_++, id});
  return id;
}

void Engine::cancel(EventId id) { records_.erase(id); }

void Engine::fire(const Entry& e) {
  auto it = records_.find(e.id);
  if (it == records_.end()) return;  // cancelled
  // A nested advance() inside an earlier event may already have pushed the
  // clock past this event's timestamp; time never moves backwards.
  now_ = std::max(now_, e.t);
  if (it->second.period > 0.0) {
    // Reschedule before running so the callback may cancel itself.
    queue_.push(Entry{e.t + it->second.period, next_seq_++, e.id});
    // Copy: the map may rehash if the callback schedules new events.
    auto fn = it->second.fn;
    fn();
  } else {
    auto fn = std::move(it->second.fn);
    records_.erase(it);
    fn();
  }
}

void Engine::advance(Seconds dt) {
  SPECTRA_REQUIRE(dt >= 0.0, "cannot advance backwards");
  run_until(now_ + dt);
}

void Engine::run_until(Seconds t) {
  if (t <= now_) return;
  while (!queue_.empty() && queue_.top().t <= t) {
    const Entry e = queue_.top();
    queue_.pop();
    fire(e);
  }
  now_ = std::max(now_, t);
}

void Engine::drain(Seconds horizon, std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().t <= horizon && fired < max_events) {
    const Entry e = queue_.top();
    queue_.pop();
    const bool live = records_.count(e.id) > 0;
    fire(e);
    if (live) ++fired;
  }
  if (horizon > now_) now_ = horizon;
}

std::size_t Engine::pending_events() const {
  // The queue may hold tombstones for cancelled events; count live records.
  return records_.size();
}

}  // namespace spectra::sim
