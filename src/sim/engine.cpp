#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace spectra::sim {

EventId Engine::schedule_at(Seconds t, std::function<void()> fn,
                            std::string tag) {
  SPECTRA_REQUIRE(t >= now_, "cannot schedule an event in the past");
  SPECTRA_REQUIRE(fn != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  records_[id] = Record{std::move(fn), 0.0, std::move(tag)};
  queue_.push(Entry{t, next_seq_++, id});
  return id;
}

EventId Engine::schedule_after(Seconds dt, std::function<void()> fn,
                               std::string tag) {
  SPECTRA_REQUIRE(dt >= 0.0, "negative delay");
  return schedule_at(now_ + dt, std::move(fn), std::move(tag));
}

EventId Engine::schedule_periodic(Seconds interval, std::function<void()> fn,
                                  std::string tag) {
  SPECTRA_REQUIRE(interval > 0.0, "periodic interval must be positive");
  SPECTRA_REQUIRE(fn != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  records_[id] = Record{std::move(fn), interval, std::move(tag)};
  queue_.push(Entry{now_ + interval, next_seq_++, id});
  return id;
}

void Engine::cancel(EventId id) { records_.erase(id); }

void Engine::fire(const Entry& e) {
  auto it = records_.find(e.id);
  if (it == records_.end()) return;  // cancelled
  // A nested advance() inside an earlier event may already have pushed the
  // clock past this event's timestamp; time never moves backwards.
  now_ = std::max(now_, e.t);
  if (it->second.period > 0.0) {
    // Reschedule before running so the callback may cancel itself.
    queue_.push(Entry{e.t + it->second.period, next_seq_++, e.id});
    // Copy: the map may rehash if the callback schedules new events.
    auto fn = it->second.fn;
    fn();
  } else {
    auto fn = std::move(it->second.fn);
    records_.erase(it);
    fn();
  }
}

void Engine::advance(Seconds dt) {
  SPECTRA_REQUIRE(dt >= 0.0, "cannot advance backwards");
  run_until(now_ + dt);
}

void Engine::run_until(Seconds t) {
  if (t <= now_) return;
  while (!queue_.empty() && queue_.top().t <= t) {
    const Entry e = queue_.top();
    queue_.pop();
    fire(e);
  }
  now_ = std::max(now_, t);
}

void Engine::drain(Seconds horizon, std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().t <= horizon && fired < max_events) {
    const Entry e = queue_.top();
    queue_.pop();
    const bool live = records_.count(e.id) > 0;
    fire(e);
    if (live) ++fired;
  }
  if (horizon > now_) now_ = horizon;
}

std::size_t Engine::pending_events() const {
  // The queue may hold tombstones for cancelled events; count live records.
  return records_.size();
}

void Engine::adopt_schedule(const Engine& src) {
  // Index this engine's tagged callbacks; each may satisfy one src event.
  std::unordered_map<std::string, std::function<void()>> by_tag;
  for (const auto& [id, rec] : records_) {
    if (rec.tag.empty()) continue;
    SPECTRA_REQUIRE(by_tag.emplace(rec.tag, rec.fn).second,
                    "duplicate event tag '" + rec.tag + "'");
  }
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::unordered_map<EventId, Record> records;
  auto pending = src.queue_;  // copy; popping yields deterministic order
  while (!pending.empty()) {
    const Entry e = pending.top();
    pending.pop();
    auto it = src.records_.find(e.id);
    if (it == src.records_.end()) continue;  // tombstone of a cancelled event
    const Record& rec = it->second;
    SPECTRA_REQUIRE(!rec.tag.empty(),
                    "cannot adopt an untagged pending event");
    auto cb = by_tag.find(rec.tag);
    SPECTRA_REQUIRE(cb != by_tag.end(),
                    "no local event registered for tag '" + rec.tag + "'");
    records[e.id] = Record{cb->second, rec.period, rec.tag};
    by_tag.erase(cb);
    queue.push(e);
  }
  queue_ = std::move(queue);
  records_ = std::move(records);
  now_ = src.now_;
  next_seq_ = src.next_seq_;
  next_id_ = src.next_id_;
}

}  // namespace spectra::sim
