// Conservative island-parallel execution over a work-stealing pool.
//
// A large world is partitioned into K islands that advance independently on
// exec::ThreadPool workers and synchronize at a fixed lookahead horizon H:
// the classic conservative PDES super-step. Between barriers an island may
// only read state frozen at the last barrier (cross-island load views, the
// shared-medium estimate) and write state it owns, so the step needs no
// locks; every cross-island effect is mailed through the sequential
// exchange hook that runs at each barrier. H must be a lower bound on the
// cross-island reaction latency — for Spectra worlds the server status-poll
// interval / link round trip (see scenario::derive_lookahead) — which is
// what makes the barrier placement conservative rather than speculative.
//
// Determinism: the island partition and H are pure functions of the
// scenario, never of the worker count. The executor always runs the same K
// advance calls over the same [barrier, barrier+H) windows and the same
// sequential exchanges in between; the pool only decides which worker
// executes each fixed call. A world whose advance hook touches only
// island-owned state is therefore byte-identical for any --jobs, including
// --jobs=1 (advance calls run inline, in island index order).
//
// The hooks typically wrap a per-island sim::Engine or tick loop; the
// executor itself only owns the clock and the barrier cadence, so it
// layers over either without caring which.
#pragma once

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"
#include "util/units.h"

namespace spectra::sim {

class IslandExecutor {
 public:
  struct Hooks {
    // Advance island `island` from its current time to `target`. Runs on a
    // pool worker (or inline); must touch only island-owned state plus
    // barrier-frozen read-only views.
    std::function<void(std::size_t island, util::Seconds target)> advance;
    // Sequential barrier at time `t`: deliver cross-island mail, fold
    // shared estimates, refreeze cross-island views. Runs before the
    // islands advance into [t, t + lookahead).
    std::function<void(util::Seconds t)> exchange;
  };

  // `lookahead` is the barrier spacing H (> 0). Barriers fire at 0, H, 2H,
  // ... regardless of how run_until calls chop up the timeline.
  IslandExecutor(std::size_t islands, util::Seconds lookahead, Hooks hooks);

  std::size_t islands() const { return islands_; }
  util::Seconds lookahead() const { return lookahead_; }
  util::Seconds now() const { return now_; }
  // End of the super-step currently in flight (== the next barrier time
  // once the pending exchange has run). Stable during advance calls, so
  // hooks may read it to price cross-island ferry delays.
  util::Seconds next_barrier() const { return next_barrier_; }

  // Advance every island to `until`, running the exchange hook at each
  // barrier on the way. Stops early (at a step boundary, all islands
  // aligned) when a shutdown is requested. `pool` may be null: advance
  // calls then run inline in island index order — the sequential reference
  // path whose output parallel runs must reproduce byte for byte.
  void run_until(util::Seconds until, exec::ThreadPool* pool);

  // Adopt the clock/barrier position from another executor over the same
  // island decomposition (clone support; hooks stay bound to this world).
  void copy_state_from(const IslandExecutor& src);

 private:
  std::size_t islands_;
  util::Seconds lookahead_;
  Hooks hooks_;
  util::Seconds now_ = 0.0;
  util::Seconds next_barrier_ = 0.0;  // first barrier is at t = 0
};

}  // namespace spectra::sim
