#include "sim/island_exec.h"

#include <algorithm>

#include "util/assert.h"
#include "util/shutdown.h"

namespace spectra::sim {

namespace {
// Virtual-time comparisons tolerate accumulated floating-point drift from
// repeated `next_barrier_ += lookahead_` steps.
constexpr double kTimeEps = 1e-9;
}  // namespace

IslandExecutor::IslandExecutor(std::size_t islands, util::Seconds lookahead,
                               Hooks hooks)
    : islands_(islands), lookahead_(lookahead), hooks_(std::move(hooks)) {
  SPECTRA_REQUIRE(islands_ >= 1, "island executor needs at least one island");
  SPECTRA_REQUIRE(lookahead_ > 0.0, "lookahead horizon must be positive");
  SPECTRA_REQUIRE(hooks_.advance != nullptr && hooks_.exchange != nullptr,
                  "island executor needs both hooks");
}

void IslandExecutor::run_until(util::Seconds until, exec::ThreadPool* pool) {
  while (now_ + kTimeEps < until) {
    // Shutdown is only honoured between steps, so the islands always stop
    // aligned on a common time and the caller can still flush consistently.
    if (util::shutdown_requested()) break;
    if (now_ + kTimeEps >= next_barrier_) {
      hooks_.exchange(next_barrier_);
      next_barrier_ += lookahead_;
    }
    const util::Seconds target = std::min(until, next_barrier_);
    if (islands_ == 1) {
      hooks_.advance(0, target);
    } else {
      exec::parallel_for(pool, islands_, [this, target](std::size_t island) {
        hooks_.advance(island, target);
      });
    }
    now_ = target;
  }
}

void IslandExecutor::copy_state_from(const IslandExecutor& src) {
  SPECTRA_REQUIRE(islands_ == src.islands_ && lookahead_ == src.lookahead_,
                  "island executor clone shape mismatch");
  now_ = src.now_;
  next_barrier_ = src.next_barrier_;
}

}  // namespace spectra::sim
