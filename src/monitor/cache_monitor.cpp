#include "monitor/cache_monitor.h"

#include "util/assert.h"

namespace spectra::monitor {

void FileCacheMonitor::predict_avail(ResourceSnapshot& snapshot) {
  if (incremental_) {
    const auto delta = coda_.dump_cache_state_delta(last_generation_);
    last_generation_ = delta.generation;
    if (!delta.added_or_updated.empty() || !delta.removed.empty() ||
        delta.full_resync) {
      // Copy-on-write: earlier snapshots may still hold the old view.
      if (mirror_.use_count() > 1) {
        mirror_ = std::make_shared<CachedFileView>(*mirror_);
      }
      if (delta.full_resync) mirror_->clear();
      for (const auto& info : delta.added_or_updated) {
        (*mirror_)[util::Symbol(info.path)] = info.size;
      }
      for (const auto& path : delta.removed) {
        mirror_->erase(util::Symbol(path));
      }
    }
    snapshot.local_cached_files = mirror_;  // O(1) share
  } else {
    auto view = std::make_shared<CachedFileView>();
    for (const auto& info : coda_.dump_cache_state()) {
      view->emplace(util::Symbol(info.path), info.size);
    }
    snapshot.local_cached_files = std::move(view);
  }
  snapshot.local_fetch_rate = coda_.estimated_fetch_rate();
}

void FileCacheMonitor::start_op() { coda_.start_trace(); }

void FileCacheMonitor::stop_op(OperationUsage& usage) {
  usage.local_file_accesses = coda_.stop_trace();
}

void FileCacheMonitor::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const FileCacheMonitor*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  // Fresh view, not a share: the source's mirror must keep belonging to the
  // source world's copy-on-write chain.
  mirror_ = std::make_shared<CachedFileView>(*other->mirror_);
  last_generation_ = other->last_generation_;
}

}  // namespace spectra::monitor
