// Network monitor (§3.3.2).
//
// Predictions come from *passive observation* of communication, never from
// the simulator's ground-truth link parameters. The RPC package (and Coda)
// move bytes through net::Network, which logs every transfer; this monitor
// periodically examines the recent log. Short exchanges approximate round
// trip time; bulk transfers approximate throughput (after subtracting the
// latency estimate). Estimates are kept per peer, smoothed with a recency-
// weighted average, and fall back to configured priors for peers with no
// observations yet.
//
// Usage: counts the bytes sent/received and RPCs performed by the current
// operation — trivial to observe because all client-server communication
// passes through Spectra (the client reports these via note_call).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "monitor/monitor.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace spectra::monitor {

struct NetworkMonitorConfig {
  Seconds observation_window = 30.0;  // how far back to examine the log
  Seconds refresh_period = 2.0;       // how often to examine it
  Bytes small_transfer_max = 1024.0;  // "short exchange" threshold
  Bytes bulk_transfer_min = 4096.0;   // "bulk transfer" threshold
  double smoothing_alpha = 0.5;
  // Priors used before the first observation of a peer.
  BytesPerSec default_bandwidth = 64.0 * 1024;
  Seconds default_latency = 0.01;
};

class NetworkMonitor : public ResourceMonitor {
 public:
  NetworkMonitor(sim::Engine& engine, net::Network& network, MachineId self,
                 NetworkMonitorConfig config = {});
  ~NetworkMonitor() override;

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void start_op() override;
  void stop_op(OperationUsage& usage) override;
  void copy_state_from(const ResourceMonitor& src) override;

  // Called by the Spectra client for every RPC the operation performs.
  void note_call(const rpc::CallStats& stats);

  // Register refresh/ingest counters with `obs` (null detaches). Counter
  // handles are cached here, so refresh() stays name-lookup-free.
  void attach(obs::Observability* obs);

  // Current estimates for a peer (tests/telemetry). A peer with no bulk
  // history inherits the whole-machine estimate: the paper's monitor first
  // determines "the instantaneous bandwidth available to the entire
  // machine" and then apportions it per server "assuming that the first
  // hop is the bottleneck link" — so any observed traffic informs
  // estimates for servers not yet talked to.
  BytesPerSec bandwidth_estimate(MachineId peer) const;
  Seconds latency_estimate(MachineId peer) const;

  // Whole-machine bandwidth estimate (0 when nothing observed yet).
  BytesPerSec machine_bandwidth_estimate() const;

 private:
  struct PeerEstimate {
    util::Ewma bandwidth;
    util::Ewma latency;
    // Newest transfer id already ingested. Dedup must key on the unique
    // id, not the start time: distinct transfers can start at the same
    // virtual tick (fast link, sub-ulp durations), and a timestamp test
    // would silently drop all but the first of them.
    std::uint64_t last_ingested_id = 0;
    PeerEstimate(double alpha) : bandwidth(alpha), latency(alpha) {}
  };

  void refresh();
  PeerEstimate& peer(MachineId id);

  std::string name_ = "network";
  sim::Engine& engine_;
  net::Network& network_;
  MachineId self_;
  NetworkMonitorConfig config_;
  std::map<MachineId, PeerEstimate> peers_;
  util::Ewma machine_bw_{0.5};  // first-hop estimate from all bulk traffic
  sim::EventId refresher_ = 0;

  // Cached metric handles; null when no Observability is attached.
  obs::Counter* refreshes_metric_ = nullptr;
  obs::Counter* ingested_metric_ = nullptr;

  // Per-operation accounting.
  Bytes op_bytes_sent_ = 0.0;
  Bytes op_bytes_received_ = 0.0;
  int op_rpcs_ = 0;
};

}  // namespace spectra::monitor
