#include "monitor/cpu_monitor.h"

#include "util/assert.h"

namespace spectra::monitor {

CpuMonitor::CpuMonitor(sim::Engine& engine, hw::Machine& machine,
                       Seconds sample_period, double smoothing_alpha)
    : engine_(engine), machine_(machine), queue_est_(smoothing_alpha) {
  sampler_ = engine_.schedule_periodic(sample_period, [this] { sample(); },
                                       "cpu.sample");
  sample();
}

CpuMonitor::~CpuMonitor() { engine_.cancel(sampler_); }

void CpuMonitor::sample() { queue_est_.add(machine_.sample_run_queue()); }

double CpuMonitor::smoothed_queue() const {
  return queue_est_.empty() ? 0.0 : queue_est_.value();
}

void CpuMonitor::predict_avail(ResourceSnapshot& snapshot) {
  sample();
  snapshot.local_cpu_hz =
      machine_.spec().cpu_hz / (1.0 + smoothed_queue());
}

void CpuMonitor::start_op() { cycles_at_start_ = machine_.cycles_executed(); }

void CpuMonitor::stop_op(OperationUsage& usage) {
  usage.local_cycles = machine_.cycles_executed() - cycles_at_start_;
}

void CpuMonitor::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const CpuMonitor*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  queue_est_ = other->queue_est_;
  cycles_at_start_ = other->cycles_at_start_;
}

}  // namespace spectra::monitor
