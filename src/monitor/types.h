// Shared data types for the resource-monitor framework.
//
// A ResourceSnapshot is the "consistent view of the local and remote
// resources available for execution" the paper builds before each operation:
// the snapshot builder lists candidate servers, then every monitor fills in
// the fields it is responsible for. OperationUsage is the complementary
// demand-side record: what one operation actually consumed, assembled by the
// monitors between start_op and stop_op (plus add_usage for server-side
// consumption reported in RPC responses).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/coda.h"
#include "hw/machine.h"
#include "util/interner.h"
#include "util/units.h"

namespace spectra::monitor {

using hw::MachineId;
using util::Bytes;
using util::BytesPerSec;
using util::Cycles;
using util::Hertz;
using util::Joules;
using util::Seconds;

// Immutable view of a machine's cached files (interned path -> size).
// Snapshots share these by pointer: the file-cache monitor maintains the
// view copy-on-write and remote proxies share the view from the last status
// report, so taking a snapshot costs O(1) regardless of cache size (the
// point of the incremental cache interface, see fs::CodaClient). Keys are
// interned symbols so the estimator's membership probes are integer-hash
// lookups with no string compares.
using CachedFileView = std::unordered_map<util::Symbol, Bytes>;

inline const CachedFileView& empty_cached_file_view() {
  static const CachedFileView empty;
  return empty;
}

// Availability of one candidate remote server, as predicted by the remote
// proxy monitors (from polled status) and the network monitor (from passive
// observation).
struct ServerAvailability {
  MachineId id = -1;
  bool reachable = false;
  Hertz cpu_hz = 0.0;           // cycles/sec an op would receive
  BytesPerSec bandwidth = 0.0;  // estimated, to this server
  Seconds latency = 0.0;        // estimated one-way latency
  // Server's file cache contents, shared from its last status report
  // (never null after the proxy fills the entry in).
  std::shared_ptr<const CachedFileView> cached_files =
      std::make_shared<CachedFileView>();
  BytesPerSec fetch_rate = 0.0;  // server's Coda fetch rate
  Seconds status_age = 0.0;      // how stale the polled status is
};

struct ResourceSnapshot {
  Seconds taken_at = 0.0;

  // Local machine.
  Hertz local_cpu_hz = 0.0;
  std::shared_ptr<const CachedFileView> local_cached_files =
      std::make_shared<CachedFileView>();
  BytesPerSec local_fetch_rate = 0.0;

  // Battery / energy.
  Joules battery_remaining = 0.0;
  double energy_importance = 0.0;  // the paper's c in [0,1]

  // Candidate servers, keyed by machine id. Pre-populated with candidates by
  // the snapshot builder; monitors fill the fields in.
  std::map<MachineId, ServerAvailability> servers;
};

// Everything one operation consumed. Local fields are measured directly;
// remote fields accumulate from per-RPC usage reports.
struct OperationUsage {
  Seconds elapsed = 0.0;

  Cycles local_cycles = 0.0;
  Cycles remote_cycles = 0.0;

  Bytes bytes_sent = 0.0;
  Bytes bytes_received = 0.0;
  int rpcs = 0;
  // RPC attempts lost to transport faults (partition, crash, timeout)
  // before the operation completed or degraded; persisted in the usage log
  // so robustness regressions are visible in the record.
  int rpc_failures = 0;

  Joules energy = 0.0;
  // Energy measurements of concurrent operations cannot be separated; when
  // true, the demand predictors skip the energy sample (paper §3.3.3).
  bool energy_valid = true;

  std::vector<fs::Access> local_file_accesses;
  std::vector<fs::Access> remote_file_accesses;
};

// Snapshot of a Spectra server's resources, shipped to clients by the
// status-polling protocol and fed to the remote proxy monitors via
// update_preds.
struct ServerStatusReport {
  MachineId server = -1;
  Seconds generated_at = 0.0;
  double run_queue = 0.0;   // smoothed competing-process count
  Hertz cpu_hz = 0.0;       // nominal processor speed
  // Built once by the server per poll and shared by reference through the
  // proxy into every subsequent snapshot (never null).
  std::shared_ptr<const CachedFileView> cached_files =
      std::make_shared<CachedFileView>();
  BytesPerSec fetch_rate = 0.0;

  // Wire size of the serialized report (the cache list dominates).
  Bytes wire_size() const {
    const std::size_t n = cached_files ? cached_files->size() : 0;
    return 128.0 + 48.0 * static_cast<double>(n);
  }
};

}  // namespace spectra::monitor
