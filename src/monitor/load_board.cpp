#include "monitor/load_board.h"

#include "util/assert.h"

namespace spectra::monitor {

LoadBoard::LoadBoard(std::size_t servers, double smoothing_alpha) {
  SPECTRA_REQUIRE(servers >= 1, "load board needs at least one server");
  slots_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) slots_.emplace_back(smoothing_alpha);
}

void LoadBoard::publish(std::size_t server, double run_queue,
                        double utilization, bool up) {
  SPECTRA_REQUIRE(server < slots_.size(), "publish to unknown server");
  Slot& slot = slots_[server];
  slot.back_queue = run_queue;
  slot.back_util = utilization;
  slot.back_up = up;
}

void LoadBoard::snapshot_into(std::vector<ServerLoadView>& out,
                              std::size_t base) const {
  SPECTRA_REQUIRE(base + slots_.size() <= out.size(),
                  "snapshot target does not span this board");
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out[base + i] = slots_[i].front;
  }
}

void LoadBoard::flip() {
  for (Slot& slot : slots_) {
    slot.queue_est.add(slot.back_queue);
    slot.front.run_queue = slot.queue_est.value();
    slot.front.utilization = slot.back_util;
    slot.front.up = slot.back_up;
  }
}

}  // namespace spectra::monitor
