// Battery monitor and goal-directed energy adaptation (§3.3.3).
//
// Availability: the energy remaining in the client's battery, plus the
// current *importance of energy conservation* c ∈ [0,1]. c comes from
// goal-directed adaptation (Flinn & Satyanarayanan, SOSP'99): the user
// states how long the battery must last; a feedback loop compares the
// predicted lifetime (remaining energy / smoothed demand rate) against the
// remaining goal and nudges c up when the battery will fall short, down
// when there is slack. On wall power c is 0.
//
// Usage: reads the platform's energy instrument (ACPI, SmartBattery, or an
// external multimeter — chosen per platform, each modeled with its own
// quantization) before and after the operation. Energy of concurrently
// executing operations cannot be separated, so such samples are flagged
// invalid and skipped by the demand predictors.
#pragma once

#include <memory>
#include <string>

#include "hw/energy.h"
#include "hw/machine.h"
#include "monitor/monitor.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace spectra::monitor {

struct GoalAdaptationConfig {
  Seconds tick_period = 5.0;
  double demand_alpha = 0.3;  // smoothing of the observed demand rate
  double gain = 0.5;          // feedback gain on the relative lifetime error
};

class GoalDirectedAdaptation {
 public:
  GoalDirectedAdaptation(sim::Engine& engine, hw::Machine& machine,
                         hw::EnergyDriver& driver,
                         GoalAdaptationConfig config = {});
  ~GoalDirectedAdaptation();

  // The battery must last `duration` seconds from now.
  void set_goal(Seconds duration);
  void clear_goal();

  // Pin c to a fixed value, bypassing the feedback loop. Experiment
  // scenarios use this for reproducibility (the paper does not report the
  // converged c of its energy scenarios); pass a negative value to unpin.
  void pin_importance(double c);
  bool pinned() const { return pinned_importance_ >= 0.0; }

  // Current importance of energy conservation, c in [0,1].
  double importance() const {
    return pinned() ? pinned_importance_ : importance_;
  }

  // Predicted battery lifetime at the current demand rate (for telemetry);
  // +inf when no demand has been observed.
  Seconds predicted_lifetime();

  // Copy the feedback-loop state from the same adaptation in another world.
  void copy_state_from(const GoalDirectedAdaptation& src);

 private:
  void tick();

  sim::Engine& engine_;
  hw::Machine& machine_;
  hw::EnergyDriver& driver_;
  GoalAdaptationConfig config_;
  sim::EventId ticker_ = 0;

  bool goal_active_ = false;
  Seconds goal_end_ = 0.0;
  double importance_ = 0.0;
  double pinned_importance_ = -1.0;
  util::Ewma demand_rate_;
  hw::Joules last_consumed_ = 0.0;
  Seconds last_tick_ = 0.0;
};

class BatteryMonitor : public ResourceMonitor {
 public:
  BatteryMonitor(sim::Engine& engine, hw::Machine& machine,
                 std::unique_ptr<hw::EnergyDriver> driver,
                 GoalAdaptationConfig config = {});

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void start_op() override;
  void stop_op(OperationUsage& usage) override;
  void copy_state_from(const ResourceMonitor& src) override;

  GoalDirectedAdaptation& adaptation() { return adaptation_; }
  hw::EnergyDriver& driver() { return *driver_; }

  // Concurrency bracketing: when more than one operation is in flight the
  // energy sample is invalid (§3.3.3).
  void note_concurrent_op_started() { ++concurrent_ops_; }
  void note_concurrent_op_finished() { --concurrent_ops_; }

 private:
  std::string name_ = "battery";
  hw::Machine& machine_;
  std::unique_ptr<hw::EnergyDriver> driver_;
  GoalDirectedAdaptation adaptation_;
  hw::Joules consumed_at_start_ = 0.0;
  int concurrent_ops_ = 0;
  bool overlap_seen_ = false;
};

}  // namespace spectra::monitor
