// ResourceMonitor interface and the MonitorSet container.
//
// Monitors follow the paper's modular framework (§3.3): each measures one
// resource or a set of related resources and implements a common interface —
// predict_avail to fill a snapshot, start_op/stop_op to observe an
// operation's usage, add_usage to account server-reported consumption, and
// update_preds to ingest polled server status (remote proxies only).
// Adding measurement capability for a new resource means adding one class.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "monitor/types.h"
#include "rpc/rpc.h"

namespace spectra::monitor {

class ResourceMonitor {
 public:
  virtual ~ResourceMonitor() = default;

  virtual const std::string& name() const = 0;

  // Fill in the snapshot fields this monitor is responsible for. The
  // snapshot's `servers` map is pre-populated with candidate entries.
  virtual void predict_avail(ResourceSnapshot& snapshot) = 0;

  // Bracket one operation's execution.
  virtual void start_op() {}
  virtual void stop_op(OperationUsage& usage) { (void)usage; }

  // Account resource consumption reported by a Spectra server as part of an
  // RPC response (§3.3.5).
  virtual void add_usage(MachineId server, const rpc::UsageReport& report,
                         OperationUsage& usage) {
    (void)server;
    (void)report;
    (void)usage;
  }

  // Ingest a polled server status report (remote proxy monitors).
  virtual void update_preds(const ServerStatusReport& report) {
    (void)report;
  }

  // Copy learned estimates and per-op accounting from the same-type monitor
  // in another world (used when cloning a trained world). `src` must be the
  // same concrete type; implementations verify via dynamic_cast.
  virtual void copy_state_from(const ResourceMonitor& src) = 0;
};

// The set of monitors installed on a Spectra client. Dispatch helpers fan
// each framework call out to every monitor.
class MonitorSet {
 public:
  void add(std::unique_ptr<ResourceMonitor> monitor);

  // Build a snapshot covering `candidates` (remote server machine ids).
  ResourceSnapshot build_snapshot(const std::vector<MachineId>& candidates,
                                  Seconds now);

  void start_op();
  void stop_op(OperationUsage& usage);
  void add_usage(MachineId server, const rpc::UsageReport& report,
                 OperationUsage& usage);
  void update_preds(const ServerStatusReport& report);

  std::size_t size() const { return monitors_.size(); }

  // Access a monitor by name (tests, goal wiring); null when absent.
  ResourceMonitor* find(const std::string& name);

  // Pairwise copy_state_from over two structurally identical sets (same
  // monitors installed in the same order).
  void copy_state_from(const MonitorSet& src);

  // Real (host) wall-clock seconds each monitor spent in predict_avail
  // during the most recent build_snapshot; feeds the Fig-10 overhead
  // breakdown ("file cache prediction" is the file_cache monitor's share).
  const std::map<std::string, double>& last_predict_wall_times() const {
    return last_predict_wall_;
  }

 private:
  std::vector<std::unique_ptr<ResourceMonitor>> monitors_;
  std::map<std::string, double> last_predict_wall_;
};

}  // namespace spectra::monitor
