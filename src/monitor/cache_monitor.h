// Local file-cache state monitor (§3.3.4).
//
// Availability: asks Coda which files are cached (through the costed
// cache-dump interface — this is the "file cache prediction" line of the
// paper's overhead table, and the reason a full cache costs more than an
// empty one) plus Coda's estimate of the rate at which uncached data will
// be fetched.
//
// Usage: brackets the operation with a Coda access trace; the names and
// sizes of files accessed feed the file-access predictor.
#pragma once

#include <string>

#include "fs/coda.h"
#include "monitor/monitor.h"

namespace spectra::monitor {

class FileCacheMonitor : public ResourceMonitor {
 public:
  // `incremental` selects Coda's delta interface (the efficient
  // implementation the paper says it plans to build, §4.4): the monitor
  // mirrors the cache and applies changes, paying per change instead of per
  // cached entry. Off by default so the paper's overhead table reproduces.
  explicit FileCacheMonitor(fs::CodaClient& coda, bool incremental = false)
      : coda_(coda), incremental_(incremental) {}

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void start_op() override;
  void stop_op(OperationUsage& usage) override;
  void copy_state_from(const ResourceMonitor& src) override;

 private:
  std::string name_ = "file_cache";
  fs::CodaClient& coda_;
  bool incremental_;
  // Mirror maintained under the incremental interface, shared with issued
  // snapshots and updated copy-on-write.
  std::shared_ptr<CachedFileView> mirror_ =
      std::make_shared<CachedFileView>();
  std::uint64_t last_generation_ = 0;
};

}  // namespace spectra::monitor
