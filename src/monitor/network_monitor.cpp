#include "monitor/network_monitor.h"

#include <algorithm>

namespace spectra::monitor {

NetworkMonitor::NetworkMonitor(sim::Engine& engine, net::Network& network,
                               MachineId self, NetworkMonitorConfig config)
    : engine_(engine), network_(network), self_(self), config_(config) {
  refresher_ =
      engine_.schedule_periodic(config_.refresh_period, [this] { refresh(); },
                                "network.refresh");
}

NetworkMonitor::~NetworkMonitor() { engine_.cancel(refresher_); }

NetworkMonitor::PeerEstimate& NetworkMonitor::peer(MachineId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) {
    it = peers_.emplace(id, PeerEstimate(config_.smoothing_alpha)).first;
  }
  return it->second;
}

void NetworkMonitor::attach(obs::Observability* obs) {
  if (obs == nullptr) {
    refreshes_metric_ = nullptr;
    ingested_metric_ = nullptr;
    return;
  }
  refreshes_metric_ = &obs->metrics().counter("monitor.network.refreshes");
  ingested_metric_ = &obs->metrics().counter("monitor.network.ingested");
}

void NetworkMonitor::refresh() {
  if (refreshes_metric_ != nullptr) refreshes_metric_->add();
  const auto transfers =
      network_.recent_transfers(self_, config_.observation_window);
  for (const auto& t : transfers) {
    const MachineId other = (t.from == self_) ? t.to : t.from;
    PeerEstimate& est = peer(other);
    // Dedup on the unique transfer id: transfers over a fast link can
    // share a start tick, so a timestamp comparison would drop them.
    if (t.id <= est.last_ingested_id) continue;  // already ingested
    est.last_ingested_id = t.id;
    if (ingested_metric_ != nullptr) ingested_metric_->add();
    if (t.bytes <= config_.small_transfer_max) {
      // Short exchange: duration ~ one-way latency + negligible payload.
      est.latency.add(t.duration);
    }
    if (t.bytes >= config_.bulk_transfer_min && t.duration > 0.0) {
      const Seconds lat =
          est.latency.empty() ? config_.default_latency : est.latency.value();
      const Seconds payload_time = std::max(t.duration - lat, 1e-6);
      est.bandwidth.add(t.bytes / payload_time);
      // Any bulk transfer also samples the machine's first-hop bandwidth.
      machine_bw_.add(t.bytes / payload_time);
    }
  }
}

util::BytesPerSec NetworkMonitor::machine_bandwidth_estimate() const {
  return machine_bw_.empty() ? 0.0 : machine_bw_.value();
}

BytesPerSec NetworkMonitor::bandwidth_estimate(MachineId id) const {
  auto it = peers_.find(id);
  if (it != peers_.end() && !it->second.bandwidth.empty()) {
    return it->second.bandwidth.value();
  }
  // First-hop-bottleneck apportioning: unobserved peers inherit the
  // whole-machine estimate.
  if (!machine_bw_.empty()) return machine_bw_.value();
  return config_.default_bandwidth;
}

Seconds NetworkMonitor::latency_estimate(MachineId id) const {
  auto it = peers_.find(id);
  if (it == peers_.end() || it->second.latency.empty()) {
    return config_.default_latency;
  }
  return it->second.latency.value();
}

void NetworkMonitor::predict_avail(ResourceSnapshot& snapshot) {
  refresh();
  for (auto& [id, sa] : snapshot.servers) {
    sa.reachable = network_.reachable(self_, id);
    sa.bandwidth = bandwidth_estimate(id);
    sa.latency = latency_estimate(id);
  }
}

void NetworkMonitor::start_op() {
  op_bytes_sent_ = 0.0;
  op_bytes_received_ = 0.0;
  op_rpcs_ = 0;
}

void NetworkMonitor::note_call(const rpc::CallStats& stats) {
  op_bytes_sent_ += stats.bytes_sent;
  op_bytes_received_ += stats.bytes_received;
  op_rpcs_ += stats.rpcs;
}

void NetworkMonitor::stop_op(OperationUsage& usage) {
  usage.bytes_sent = op_bytes_sent_;
  usage.bytes_received = op_bytes_received_;
  usage.rpcs = op_rpcs_;
}

void NetworkMonitor::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const NetworkMonitor*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  peers_ = other->peers_;
  machine_bw_ = other->machine_bw_;
  op_bytes_sent_ = other->op_bytes_sent_;
  op_bytes_received_ = other->op_bytes_received_;
  op_rpcs_ = other->op_rpcs_;
}

}  // namespace spectra::monitor
