#include "monitor/remote_proxy.h"

#include "util/assert.h"

namespace spectra::monitor {

void RemoteCpuProxy::update_preds(const ServerStatusReport& report) {
  reports_[report.server] = report;
}

void RemoteCpuProxy::predict_avail(ResourceSnapshot& snapshot) {
  for (auto& [id, sa] : snapshot.servers) {
    auto it = reports_.find(id);
    if (it == reports_.end()) continue;  // never polled: cpu_hz stays 0
    const ServerStatusReport& r = it->second;
    sa.cpu_hz = r.cpu_hz / (1.0 + r.run_queue);
    sa.status_age = engine_.now() - r.generated_at;
  }
}

void RemoteCpuProxy::add_usage(MachineId /*server*/,
                               const rpc::UsageReport& report,
                               OperationUsage& usage) {
  usage.remote_cycles += report.cpu_cycles;
}

void RemoteCpuProxy::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const RemoteCpuProxy*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  reports_ = other->reports_;
}

void RemoteCacheProxy::update_preds(const ServerStatusReport& report) {
  reports_[report.server] = report;
}

void RemoteCacheProxy::predict_avail(ResourceSnapshot& snapshot) {
  for (auto& [id, sa] : snapshot.servers) {
    auto it = reports_.find(id);
    if (it == reports_.end()) continue;
    const ServerStatusReport& r = it->second;
    sa.cached_files = r.cached_files;
    sa.fetch_rate = r.fetch_rate;
  }
}

void RemoteCacheProxy::add_usage(MachineId /*server*/,
                                 const rpc::UsageReport& report,
                                 OperationUsage& usage) {
  usage.remote_file_accesses.insert(usage.remote_file_accesses.end(),
                                    report.file_accesses.begin(),
                                    report.file_accesses.end());
}

void RemoteCacheProxy::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const RemoteCacheProxy*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  reports_ = other->reports_;
}

}  // namespace spectra::monitor
