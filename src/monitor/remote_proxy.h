// Remote proxy monitors (§3.3.5).
//
// Spectra servers run their own CPU and file-cache monitors and ship
// ServerStatusReports to clients, which poll periodically. On the client,
// the proxies store the most recent report per server and answer
// availability predictions from it. When an RPC response arrives carrying a
// server-side UsageReport, add_usage accumulates it into the operation's
// usage record.
#pragma once

#include <map>
#include <string>

#include "monitor/monitor.h"
#include "sim/engine.h"

namespace spectra::monitor {

// Remote CPU availability + remote CPU usage accounting.
class RemoteCpuProxy : public ResourceMonitor {
 public:
  explicit RemoteCpuProxy(sim::Engine& engine) : engine_(engine) {}

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void add_usage(MachineId server, const rpc::UsageReport& report,
                 OperationUsage& usage) override;
  void update_preds(const ServerStatusReport& report) override;
  void copy_state_from(const ResourceMonitor& src) override;

  bool has_status(MachineId server) const {
    return reports_.count(server) > 0;
  }

 private:
  std::string name_ = "remote_cpu";
  sim::Engine& engine_;
  std::map<MachineId, ServerStatusReport> reports_;
};

// Remote file-cache state + remote file-access accounting.
class RemoteCacheProxy : public ResourceMonitor {
 public:
  explicit RemoteCacheProxy(sim::Engine& engine) : engine_(engine) {}

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void add_usage(MachineId server, const rpc::UsageReport& report,
                 OperationUsage& usage) override;
  void update_preds(const ServerStatusReport& report) override;
  void copy_state_from(const ResourceMonitor& src) override;

 private:
  std::string name_ = "remote_cache";
  sim::Engine& engine_;
  std::map<MachineId, ServerStatusReport> reports_;
};

}  // namespace spectra::monitor
