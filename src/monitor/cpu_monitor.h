// Local CPU monitor (§3.3.1).
//
// Availability: samples the run queue periodically and on each prediction,
// smooths the competing-process count, and predicts the cycles/second a new
// operation would receive assuming background load stays constant and the
// operation gets a fair share: speed / (1 + queue).
//
// Usage: reads the machine's per-process cycle accounting (/proc-style)
// before and after the operation; the difference is the operation's local
// CPU demand.
#pragma once

#include <string>

#include "hw/machine.h"
#include "monitor/monitor.h"
#include "sim/engine.h"
#include "util/stats.h"

namespace spectra::monitor {

class CpuMonitor : public ResourceMonitor {
 public:
  // Samples the run queue every `sample_period` seconds of virtual time, in
  // addition to sampling at each prediction.
  CpuMonitor(sim::Engine& engine, hw::Machine& machine,
             Seconds sample_period = 1.0, double smoothing_alpha = 0.4);
  ~CpuMonitor() override;

  const std::string& name() const override { return name_; }

  void predict_avail(ResourceSnapshot& snapshot) override;
  void start_op() override;
  void stop_op(OperationUsage& usage) override;
  void copy_state_from(const ResourceMonitor& src) override;

  // Current smoothed competing-process estimate (for tests/telemetry).
  double smoothed_queue() const;

 private:
  void sample();

  std::string name_ = "cpu";
  sim::Engine& engine_;
  hw::Machine& machine_;
  util::Ewma queue_est_;
  sim::EventId sampler_ = 0;
  Cycles cycles_at_start_ = 0.0;
};

}  // namespace spectra::monitor
