#include "monitor/monitor.h"

#include <chrono>

#include "util/assert.h"

namespace spectra::monitor {

void MonitorSet::add(std::unique_ptr<ResourceMonitor> monitor) {
  SPECTRA_REQUIRE(monitor != nullptr, "null monitor");
  monitors_.push_back(std::move(monitor));
}

ResourceSnapshot MonitorSet::build_snapshot(
    const std::vector<MachineId>& candidates, Seconds now) {
  ResourceSnapshot snap;
  snap.taken_at = now;
  for (MachineId id : candidates) {
    ServerAvailability sa;
    sa.id = id;
    snap.servers.emplace(id, sa);
  }
  last_predict_wall_.clear();
  for (auto& m : monitors_) {
    const auto t0 = std::chrono::steady_clock::now();
    m->predict_avail(snap);
    const auto t1 = std::chrono::steady_clock::now();
    last_predict_wall_[m->name()] +=
        std::chrono::duration<double>(t1 - t0).count();
  }
  return snap;
}

void MonitorSet::start_op() {
  for (auto& m : monitors_) m->start_op();
}

void MonitorSet::stop_op(OperationUsage& usage) {
  for (auto& m : monitors_) m->stop_op(usage);
}

void MonitorSet::add_usage(MachineId server, const rpc::UsageReport& report,
                           OperationUsage& usage) {
  for (auto& m : monitors_) m->add_usage(server, report, usage);
}

void MonitorSet::update_preds(const ServerStatusReport& report) {
  for (auto& m : monitors_) m->update_preds(report);
}

ResourceMonitor* MonitorSet::find(const std::string& name) {
  for (auto& m : monitors_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

void MonitorSet::copy_state_from(const MonitorSet& src) {
  SPECTRA_REQUIRE(monitors_.size() == src.monitors_.size(),
                  "monitor set size mismatch in copy_state_from");
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    SPECTRA_REQUIRE(monitors_[i]->name() == src.monitors_[i]->name(),
                    "monitor order mismatch in copy_state_from");
    monitors_[i]->copy_state_from(*src.monitors_[i]);
  }
  last_predict_wall_ = src.last_predict_wall_;
}

}  // namespace spectra::monitor
