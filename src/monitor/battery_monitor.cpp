#include "monitor/battery_monitor.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace spectra::monitor {

GoalDirectedAdaptation::GoalDirectedAdaptation(sim::Engine& engine,
                                               hw::Machine& machine,
                                               hw::EnergyDriver& driver,
                                               GoalAdaptationConfig config)
    : engine_(engine),
      machine_(machine),
      driver_(driver),
      config_(config),
      demand_rate_(config.demand_alpha) {
  ticker_ =
      engine_.schedule_periodic(config_.tick_period, [this] { tick(); },
                                "battery.goal_tick");
  last_consumed_ = driver_.read_consumed();
  last_tick_ = engine_.now();
}

GoalDirectedAdaptation::~GoalDirectedAdaptation() { engine_.cancel(ticker_); }

void GoalDirectedAdaptation::set_goal(Seconds duration) {
  SPECTRA_REQUIRE(duration > 0.0, "goal duration must be positive");
  goal_active_ = true;
  goal_end_ = engine_.now() + duration;
}

void GoalDirectedAdaptation::clear_goal() {
  goal_active_ = false;
  importance_ = 0.0;
}

void GoalDirectedAdaptation::pin_importance(double c) {
  SPECTRA_REQUIRE(c < 0.0 || c <= 1.0, "importance must be in [0,1]");
  pinned_importance_ = c;
}

Seconds GoalDirectedAdaptation::predicted_lifetime() {
  hw::Battery* battery = machine_.battery();
  if (battery == nullptr || demand_rate_.empty() ||
      demand_rate_.value() <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return battery->remaining() / demand_rate_.value();
}

void GoalDirectedAdaptation::tick() {
  const Seconds now = engine_.now();
  const Seconds dt = now - last_tick_;
  const hw::Joules consumed = driver_.read_consumed();
  if (dt > 0.0) demand_rate_.add((consumed - last_consumed_) / dt);
  last_tick_ = now;
  last_consumed_ = consumed;

  if (!goal_active_ || !machine_.on_battery()) {
    importance_ = 0.0;
    return;
  }
  const Seconds goal_remaining = goal_end_ - now;
  if (goal_remaining <= 0.0) {
    // Goal met; conserve nothing.
    importance_ = std::max(0.0, importance_ - config_.gain * 0.1);
    return;
  }
  const Seconds lifetime = predicted_lifetime();
  // Relative shortfall: positive when the battery will die before the goal.
  const double error = (goal_remaining - lifetime) / goal_remaining;
  importance_ = std::clamp(importance_ + config_.gain * error, 0.0, 1.0);
}

namespace {
std::unique_ptr<hw::EnergyDriver> require_driver(
    std::unique_ptr<hw::EnergyDriver> driver) {
  SPECTRA_REQUIRE(driver != nullptr, "battery monitor needs a driver");
  return driver;
}
}  // namespace

BatteryMonitor::BatteryMonitor(sim::Engine& engine, hw::Machine& machine,
                               std::unique_ptr<hw::EnergyDriver> driver,
                               GoalAdaptationConfig config)
    : machine_(machine),
      driver_(require_driver(std::move(driver))),
      adaptation_(engine, machine, *driver_, config) {}

void BatteryMonitor::predict_avail(ResourceSnapshot& snapshot) {
  hw::Battery* battery = machine_.battery();
  snapshot.battery_remaining =
      battery != nullptr ? battery->remaining() : 0.0;
  snapshot.energy_importance = adaptation_.importance();
}

void BatteryMonitor::start_op() {
  consumed_at_start_ = driver_->read_consumed();
  overlap_seen_ = concurrent_ops_ > 0;
}

void BatteryMonitor::stop_op(OperationUsage& usage) {
  usage.energy = driver_->read_consumed() - consumed_at_start_;
  usage.energy_valid = !overlap_seen_ && concurrent_ops_ == 0;
}

void GoalDirectedAdaptation::copy_state_from(
    const GoalDirectedAdaptation& src) {
  goal_active_ = src.goal_active_;
  goal_end_ = src.goal_end_;
  importance_ = src.importance_;
  pinned_importance_ = src.pinned_importance_;
  demand_rate_ = src.demand_rate_;
  last_consumed_ = src.last_consumed_;
  last_tick_ = src.last_tick_;
}

void BatteryMonitor::copy_state_from(const ResourceMonitor& src) {
  const auto* other = dynamic_cast<const BatteryMonitor*>(&src);
  SPECTRA_REQUIRE(other != nullptr, "monitor type mismatch in copy_state_from");
  driver_->copy_state_from(*other->driver_);
  adaptation_.copy_state_from(other->adaptation_);
  consumed_at_start_ = other->consumed_at_start_;
  concurrent_ops_ = other->concurrent_ops_;
  overlap_seen_ = other->overlap_seen_;
}

}  // namespace spectra::monitor
