// Shared-server load observation for fleet-scale worlds.
//
// In the single-client testbeds the remote-CPU monitor learns server load
// from status-poll RPCs. At fleet scale thousands of clients share a server
// pool, and the contention they observe must come from each other — so each
// pool server publishes one ground-truth load sample per tick (run-queue
// length from its admission queue, utilization, up/down), and the board
// smooths it with the same EWMA the server status path applies to sampled
// run queues.
//
// The board is double-buffered around the tick barrier: publish() writes
// the back buffer, flip() folds it into the front views, and every client
// in the next decision stage reads the identical front view — concurrently,
// without locks, and independent of evaluation order or --jobs.
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.h"

namespace spectra::monitor {

// What a fleet client sees about one pool server at decision time.
struct ServerLoadView {
  double run_queue = 0.0;    // smoothed jobs holding or waiting for the CPU
  double utilization = 0.0;  // busy fraction over the last tick
  bool up = true;            // accepting work
};

class LoadBoard {
 public:
  explicit LoadBoard(std::size_t servers, double smoothing_alpha = 0.4);

  std::size_t servers() const { return slots_.size(); }

  // Server side, between decision stages: record this tick's ground truth.
  void publish(std::size_t server, double run_queue, double utilization,
               bool up);

  // Tick barrier: make every published sample visible through view().
  void flip();

  // Client side, during the decision stage. Const and contention-free, so
  // pool workers may call it concurrently.
  const ServerLoadView& view(std::size_t server) const {
    return slots_[server].front;
  }

  // Barrier freeze for island-parallel worlds: copy every front view into
  // `out` starting at index `base` (out must already span base+servers()).
  // The frozen copies stay stable while this board keeps publishing and
  // flipping, so cross-island readers never observe a mid-step update.
  void snapshot_into(std::vector<ServerLoadView>& out, std::size_t base) const;

  // Copy observation state from the same board in another world.
  void copy_state_from(const LoadBoard& src) { slots_ = src.slots_; }

 private:
  struct Slot {
    util::Ewma queue_est;
    ServerLoadView front;
    double back_queue = 0.0;
    double back_util = 0.0;
    bool back_up = true;
    Slot(double alpha) : queue_est(alpha) {}
  };

  std::vector<Slot> slots_;
};

}  // namespace spectra::monitor
