#include "fs/coda.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace spectra::fs {

// ---------------------------------------------------------------- FileServer

void FileServer::create(const FileInfo& info) {
  SPECTRA_REQUIRE(!info.path.empty(), "file path must be non-empty");
  SPECTRA_REQUIRE(info.size >= 0.0, "file size must be >= 0");
  SPECTRA_REQUIRE(!info.volume.empty(), "file must belong to a volume");
  files_[info.path] = Entry{info, 1};
}

bool FileServer::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

const FileInfo& FileServer::info(const std::string& path) const {
  auto it = files_.find(path);
  SPECTRA_REQUIRE(it != files_.end(), "unknown file: " + path);
  return it->second.info;
}

std::uint64_t FileServer::version(const std::string& path) const {
  auto it = files_.find(path);
  SPECTRA_REQUIRE(it != files_.end(), "unknown file: " + path);
  return it->second.version;
}

void FileServer::install(const std::string& path, Bytes size,
                         std::uint64_t version) {
  auto it = files_.find(path);
  SPECTRA_REQUIRE(it != files_.end(), "unknown file: " + path);
  SPECTRA_REQUIRE(version > it->second.version,
                  "reintegration must advance the version");
  it->second.info.size = size;
  it->second.version = version;
}

std::vector<FileInfo> FileServer::files_in_volume(
    const std::string& volume) const {
  std::vector<FileInfo> out;
  for (const auto& [path, entry] : files_) {
    if (entry.info.volume == volume) out.push_back(entry.info);
  }
  return out;
}

// ---------------------------------------------------------------- CodaClient

CodaClient::CodaClient(MachineId self_id, hw::Machine& machine,
                       net::Network& network, FileServer& server,
                       CodaClientConfig config)
    : self_id_(self_id),
      machine_(machine),
      network_(network),
      server_(server),
      config_(config) {
  SPECTRA_REQUIRE(config_.cache_capacity > 0.0, "cache capacity must be > 0");
}

void CodaClient::touch_lru(const std::string& path) {
  auto it = cache_.find(path);
  SPECTRA_DCHECK(it != cache_.end(), "touch of uncached file");
  lru_.erase(it->second.lru_it);
  lru_.push_front(path);
  it->second.lru_it = lru_.begin();
}

void CodaClient::journal_event(bool removed, const FileInfo& info) {
  journal_.push_back(CacheEvent{++generation_, removed, info});
  while (journal_.size() > kMaxJournal) {
    journal_start_gen_ = journal_.front().generation + 1;
    journal_.pop_front();
  }
}

void CodaClient::insert_entry(const FileInfo& info, std::uint64_t version) {
  auto it = cache_.find(info.path);
  if (it != cache_.end()) {
    cached_bytes_ -= it->second.info.size;
    it->second.info = info;
    it->second.version = version;
    cached_bytes_ += info.size;
    touch_lru(info.path);
    journal_event(/*removed=*/false, info);
    return;
  }
  evict_lru_until_fits(info.size);
  lru_.push_front(info.path);
  cache_[info.path] = CacheEntry{info, version, lru_.begin()};
  cached_bytes_ += info.size;
  journal_event(/*removed=*/false, info);
}

void CodaClient::evict_lru_until_fits(Bytes incoming) {
  while (!lru_.empty() && cached_bytes_ + incoming > config_.cache_capacity) {
    // Never evict dirty files: Coda pins unreintegrated modifications.
    auto victim = std::find_if(lru_.rbegin(), lru_.rend(),
                               [&](const std::string& p) {
                                 return dirty_.count(p) == 0;
                               });
    if (victim == lru_.rend()) break;  // everything dirty; overcommit
    evict(*victim);
  }
}

bool CodaClient::is_cached(const std::string& path) const {
  return cache_.count(path) > 0;
}

bool CodaClient::is_fresh(const std::string& path) const {
  auto it = cache_.find(path);
  if (it == cache_.end()) return false;
  if (dirty_.count(path)) return true;  // local modifications are newest here
  return it->second.version >= server_.version(path);
}

void CodaClient::warm(const std::string& path) {
  const FileInfo& info = server_.info(path);
  insert_entry(info, server_.version(path));
}

void CodaClient::evict(const std::string& path) {
  auto it = cache_.find(path);
  if (it == cache_.end()) return;
  SPECTRA_REQUIRE(dirty_.count(path) == 0,
                  "cannot evict a file with buffered modifications: " + path);
  cached_bytes_ -= it->second.info.size;
  lru_.erase(it->second.lru_it);
  journal_event(/*removed=*/true, it->second.info);
  cache_.erase(it);
}

void CodaClient::evict_all() {
  std::vector<std::string> paths;
  for (const auto& [p, e] : cache_) {
    if (dirty_.count(p) == 0) paths.push_back(p);
  }
  for (const auto& p : paths) evict(p);
}

std::vector<FileInfo> CodaClient::dump_cache_state() {
  // Coda writes the entire cache state through a temp file; model that as
  // client CPU time proportional to occupancy.
  const Seconds cost = config_.cache_dump_base +
                       config_.cache_dump_per_entry *
                           static_cast<double>(cache_.size());
  machine_.run_cycles(cost * machine_.spec().cpu_hz);
  std::vector<FileInfo> out;
  out.reserve(cache_.size());
  for (const auto& [p, e] : cache_) out.push_back(e.info);
  return out;
}

CodaClient::CacheDelta CodaClient::dump_cache_state_delta(
    std::uint64_t since) {
  CacheDelta delta;
  delta.generation = generation_;
  // The journal covers generations [journal_start_gen_, generation_]; a
  // caller can be served incrementally iff it has seen everything up to
  // journal_start_gen_ - 1.
  if (since + 1 < journal_start_gen_) {
    // The journal no longer reaches back to `since`: full resync at the
    // cost of the old interface.
    const Seconds cost = config_.cache_dump_base +
                         config_.cache_dump_per_entry *
                             static_cast<double>(cache_.size());
    machine_.run_cycles(cost * machine_.spec().cpu_hz);
    delta.full_resync = true;
    for (const auto& [p, e] : cache_) delta.added_or_updated.push_back(e.info);
    return delta;
  }
  // Collapse journal entries newer than `since` into one change set, most
  // recent state winning.
  std::map<std::string, const CacheEvent*> latest;
  std::size_t scanned = 0;
  for (const auto& ev : journal_) {
    if (ev.generation <= since) continue;
    latest[ev.info.path] = &ev;
    ++scanned;
  }
  const Seconds cost = config_.cache_dump_base +
                       config_.cache_dump_per_entry *
                           static_cast<double>(scanned);
  machine_.run_cycles(cost * machine_.spec().cpu_hz);
  for (const auto& [path, ev] : latest) {
    if (ev->removed) {
      delta.removed.push_back(path);
    } else {
      delta.added_or_updated.push_back(ev->info);
    }
  }
  return delta;
}

BytesPerSec CodaClient::estimated_fetch_rate() const {
  return fetch_rate_.empty() ? config_.nominal_fetch_rate
                             : fetch_rate_.value();
}

std::uint64_t CodaClient::read(const std::string& path) {
  const FileInfo& srv_info = server_.info(path);
  const bool hit = is_fresh(path);
  std::uint64_t version_seen = 0;
  if (hit) {
    touch_lru(path);
    version_seen = cache_.at(path).version;
  } else {
    // Fetch from the file server over the network (plus per-file RPC
    // overhead); requires the file server to be reachable.
    const MachineId me = self();
    SPECTRA_REQUIRE(network_.reachable(me, server_.host()),
                    "file server unreachable for fetch of " + path);
    const Seconds t0 = machine_.engine().now();
    machine_.engine().advance(config_.per_file_overhead);
    const net::TransferResult tr =
        network_.transfer(server_.host(), me, srv_info.size);
    SPECTRA_ENSURE(tr.completed,
                   "file server partitioned mid-fetch of " + path);
    const Seconds dt = machine_.engine().now() - t0;
    if (dt > 0.0 && srv_info.size > 0.0) {
      fetch_rate_.add(srv_info.size / dt);
    }
    insert_entry(srv_info, server_.version(path));
    version_seen = server_.version(path);
  }
  record_access(path, srv_info.size, /*write=*/false, /*miss=*/!hit);
  return version_seen;
}

void CodaClient::write(const std::string& path, std::optional<Bytes> new_size) {
  const FileInfo& srv_info = server_.info(path);
  FileInfo local = srv_info;
  if (new_size) {
    SPECTRA_REQUIRE(*new_size >= 0.0, "file size must be >= 0");
    local.size = *new_size;
  } else if (is_cached(path)) {
    local.size = cache_.at(path).info.size;
  }
  const std::uint64_t next_version =
      std::max(is_cached(path) ? cache_.at(path).version : 0,
               server_.version(path)) +
      1;
  insert_entry(local, next_version);
  dirty_.insert(path);
  record_access(path, local.size, /*write=*/true, /*miss=*/false);
}

std::vector<FileInfo> CodaClient::dirty_files() const {
  std::vector<FileInfo> out;
  for (const auto& p : dirty_) out.push_back(cache_.at(p).info);
  return out;
}

std::vector<std::string> CodaClient::dirty_volumes() const {
  std::set<std::string> vols;
  for (const auto& p : dirty_) vols.insert(cache_.at(p).info.volume);
  return {vols.begin(), vols.end()};
}

Bytes CodaClient::dirty_bytes_in_volume(const std::string& volume) const {
  Bytes total = 0.0;
  for (const auto& p : dirty_) {
    const auto& e = cache_.at(p);
    if (e.info.volume == volume) total += e.info.size;
  }
  return total;
}

Seconds CodaClient::reintegrate_volume(const std::string& volume) {
  const MachineId me = self();
  const Seconds t0 = machine_.engine().now();
  // A previous push may have been interrupted mid-flight by a fault;
  // resolve its journal transaction before starting a new one.
  recover_reintegration();
  std::vector<std::string> to_push;
  for (const auto& p : dirty_) {
    if (cache_.at(p).info.volume == volume) to_push.push_back(p);
  }
  if (to_push.empty()) return machine_.engine().now() - t0;
  SPECTRA_REQUIRE(network_.reachable(me, server_.host()),
                  "file server unreachable for reintegration");
  // Write-ahead: record the full intent before any bytes move, so a fault
  // at any later point leaves a replayable record.
  std::vector<JournalFileRecord> records;
  records.reserve(to_push.size());
  for (const auto& p : to_push) {
    const auto& e = cache_.at(p);
    records.push_back(JournalFileRecord{p, e.info.size, e.version, false});
  }
  const std::uint64_t txn =
      reintegration_log_.begin(volume, t0, std::move(records));
  for (const auto& p : to_push) {
    const auto& e = cache_.at(p);
    machine_.engine().advance(config_.per_file_overhead);
    const net::TransferResult tr = network_.transfer(
        me, server_.host(), e.info.size * config_.reintegration_overhead);
    // A partition mid-reintegration leaves the remaining modifications
    // buffered and the journal transaction active; recover_reintegration
    // replays or rolls it back at the next opportunity.
    SPECTRA_ENSURE(tr.completed,
                   "file server partitioned mid-reintegration of " + p);
    server_.install(p, e.info.size, e.version);
    dirty_.erase(p);
    reintegration_log_.mark_pushed(txn, p);
  }
  reintegration_log_.commit(txn);
  return machine_.engine().now() - t0;
}

Seconds CodaClient::reintegrate_all() {
  Seconds total = 0.0;
  for (const auto& v : dirty_volumes()) total += reintegrate_volume(v);
  // Every dirty volume pushed; an interrupted transaction with no dirty
  // volume left (all its files superseded or pushed) is resolved too.
  total += recover_reintegration();
  return total;
}

Seconds CodaClient::recover_reintegration() {
  const JournalTxn* open = reintegration_log_.open_txn();
  if (open == nullptr) return 0.0;
  const MachineId me = self();
  const Seconds t0 = machine_.engine().now();
  const std::uint64_t txn_id = open->id;
  reintegration_log_.note_recovery();
  if (!network_.reachable(me, server_.host())) {
    // Roll back. Nothing to undo at the server — install is atomic per
    // file and pushed files are durable; un-pushed modifications are still
    // buffered as dirty cache entries, so aborting is pure bookkeeping.
    reintegration_log_.abort(txn_id);
    return machine_.engine().now() - t0;
  }
  // Replay: the records are a snapshot; copy them since re-pushing mutates
  // the journal through mark_pushed.
  const std::vector<JournalFileRecord> files = open->files;
  for (const auto& rec : files) {
    if (rec.pushed) continue;
    if (server_.version(rec.path) >= rec.version) {
      // Installed by the interrupted push but not yet acknowledged in the
      // journal (fault hit between install and mark_pushed): redo is a
      // no-op, just acknowledge.
      reintegration_log_.mark_pushed(txn_id, rec.path);
      if (cache_.count(rec.path) > 0 &&
          cache_.at(rec.path).version <= server_.version(rec.path)) {
        dirty_.erase(rec.path);
      }
      continue;
    }
    auto it = cache_.find(rec.path);
    if (it == cache_.end() || dirty_.count(rec.path) == 0 ||
        it->second.version != rec.version) {
      // Superseded by a newer local write (or gone); the current state
      // will travel with the next reintegration of its volume.
      continue;
    }
    machine_.engine().advance(config_.per_file_overhead);
    const net::TransferResult tr = network_.transfer(
        me, server_.host(), rec.size * config_.reintegration_overhead);
    SPECTRA_ENSURE(tr.completed,
                   "file server partitioned replaying reintegration of " +
                       rec.path);
    server_.install(rec.path, rec.size, rec.version);
    dirty_.erase(rec.path);
    reintegration_log_.mark_pushed(txn_id, rec.path);
  }
  reintegration_log_.commit(txn_id);
  return machine_.engine().now() - t0;
}

std::vector<std::string> CodaClient::check_invariants() const {
  std::vector<std::string> violations;
  // Cache byte accounting.
  Bytes sum = 0.0;
  for (const auto& [p, e] : cache_) sum += e.info.size;
  if (std::abs(sum - cached_bytes_) > 1e-6) {
    violations.push_back("cached_bytes out of sync: accounted " +
                         std::to_string(cached_bytes_) + " vs actual " +
                         std::to_string(sum));
  }
  // LRU <-> cache bijection with live iterators.
  if (lru_.size() != cache_.size()) {
    violations.push_back("lru/cache size mismatch");
  }
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto ce = cache_.find(*it);
    if (ce == cache_.end()) {
      violations.push_back("lru entry not cached: " + *it);
    } else if (ce->second.lru_it != it) {
      violations.push_back("stale lru iterator for " + *it);
    }
  }
  // Dirty discipline: dirty files are cached (pinned) and strictly newer
  // than the server; clean cached files are never ahead of the server.
  for (const auto& p : dirty_) {
    auto it = cache_.find(p);
    if (it == cache_.end()) {
      violations.push_back("dirty file not cached: " + p);
    } else if (server_.exists(p) &&
               it->second.version <= server_.version(p)) {
      violations.push_back("dirty file not ahead of server: " + p);
    }
  }
  for (const auto& [p, e] : cache_) {
    if (dirty_.count(p) > 0) continue;
    if (server_.exists(p) && e.version > server_.version(p)) {
      violations.push_back("clean cache entry ahead of server: " + p);
    }
  }
  // Journal discipline: a pushed record is durable at the server; an
  // un-pushed, un-superseded record of the open transaction is still dirty.
  for (const auto& txn : reintegration_log_.transactions()) {
    for (const auto& rec : txn.files) {
      if (rec.pushed) {
        if (server_.exists(rec.path) &&
            server_.version(rec.path) < rec.version) {
          violations.push_back("journal pushed record not at server: " +
                               rec.path);
        }
      } else if (txn.state == TxnState::kActive) {
        auto it = cache_.find(rec.path);
        const bool superseded =
            it == cache_.end() || it->second.version != rec.version;
        if (!superseded && dirty_.count(rec.path) == 0 &&
            server_.version(rec.path) < rec.version) {
          violations.push_back(
              "open-txn un-pushed record neither dirty nor at server: " +
              rec.path);
        }
      }
    }
  }
  return violations;
}

void CodaClient::start_trace() { traces_.emplace_back(); }

std::vector<Access> CodaClient::stop_trace() {
  SPECTRA_REQUIRE(!traces_.empty(), "stop_trace without start_trace");
  std::vector<Access> top = std::move(traces_.back());
  traces_.pop_back();
  return top;
}

void CodaClient::record_access(const std::string& path, Bytes size, bool write,
                               bool miss) {
  for (auto& t : traces_) t.push_back(Access{path, size, write, miss});
}

void CodaClient::copy_state_from(const CodaClient& src) {
  SPECTRA_REQUIRE(self_id_ == src.self_id_,
                  "coda client mismatch in copy_state_from");
  SPECTRA_REQUIRE(traces_.empty() && src.traces_.empty(),
                  "cannot copy a coda client with an active access trace");
  lru_ = src.lru_;
  cache_.clear();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const CacheEntry& e = src.cache_.at(*it);
    cache_.emplace(*it, CacheEntry{e.info, e.version, it});
  }
  cached_bytes_ = src.cached_bytes_;
  dirty_ = src.dirty_;
  journal_ = src.journal_;
  generation_ = src.generation_;
  journal_start_gen_ = src.journal_start_gen_;
  fetch_rate_ = src.fetch_rate_;
  reintegration_log_ = src.reintegration_log_;
}

}  // namespace spectra::fs
