#include "fs/journal.h"

#include <sstream>

#include "util/assert.h"

namespace spectra::fs {

const char* to_string(TxnState s) {
  switch (s) {
    case TxnState::kActive:
      return "active";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

bool JournalTxn::fully_pushed() const {
  for (const auto& f : files) {
    if (!f.pushed) return false;
  }
  return true;
}

std::uint64_t ReintegrationJournal::begin(const std::string& volume,
                                          util::Seconds now,
                                          std::vector<JournalFileRecord> files) {
  SPECTRA_REQUIRE(!has_open_txn(),
                  "reintegration journal: transaction already active");
  SPECTRA_REQUIRE(!files.empty(),
                  "reintegration journal: empty transaction");
  JournalTxn txn;
  txn.id = next_id_++;
  txn.volume = volume;
  txn.started_at = now;
  txn.files = std::move(files);
  txns_.push_back(std::move(txn));
  while (txns_.size() > kMaxHistory &&
         txns_.front().state != TxnState::kActive) {
    txns_.pop_front();
  }
  return txns_.back().id;
}

JournalTxn& ReintegrationJournal::find(std::uint64_t txn_id) {
  for (auto& t : txns_) {
    if (t.id == txn_id) return t;
  }
  SPECTRA_REQUIRE(false, "reintegration journal: unknown transaction");
  return txns_.back();  // unreachable
}

void ReintegrationJournal::mark_pushed(std::uint64_t txn_id,
                                       const std::string& path) {
  JournalTxn& txn = find(txn_id);
  SPECTRA_REQUIRE(txn.state == TxnState::kActive,
                  "reintegration journal: mark_pushed on a closed txn");
  for (auto& f : txn.files) {
    if (f.path == path) {
      f.pushed = true;
      return;
    }
  }
  SPECTRA_REQUIRE(false,
                  "reintegration journal: " + path + " not in transaction");
}

void ReintegrationJournal::commit(std::uint64_t txn_id) {
  JournalTxn& txn = find(txn_id);
  SPECTRA_REQUIRE(txn.state == TxnState::kActive,
                  "reintegration journal: commit on a closed txn");
  txn.state = TxnState::kCommitted;
  ++committed_;
}

void ReintegrationJournal::abort(std::uint64_t txn_id) {
  JournalTxn& txn = find(txn_id);
  SPECTRA_REQUIRE(txn.state == TxnState::kActive,
                  "reintegration journal: abort on a closed txn");
  txn.state = TxnState::kAborted;
  ++aborted_;
}

bool ReintegrationJournal::has_open_txn() const {
  return open_txn() != nullptr;
}

const JournalTxn* ReintegrationJournal::open_txn() const {
  if (txns_.empty()) return nullptr;
  const JournalTxn& last = txns_.back();
  return last.state == TxnState::kActive ? &last : nullptr;
}

std::string ReintegrationJournal::to_string() const {
  std::ostringstream out;
  for (const auto& t : txns_) {
    std::size_t pushed = 0;
    for (const auto& f : t.files) pushed += f.pushed ? 1 : 0;
    out << "txn " << t.id << " volume=" << t.volume << " "
        << fs::to_string(t.state) << " pushed=" << pushed << "/"
        << t.files.size() << "\n";
  }
  return out.str();
}

}  // namespace spectra::fs
