// Coda-like distributed file system substrate.
//
// The paper relies on Coda for remote-execution correctness: files are
// cached on clients, modifications are buffered locally under weak
// connectivity, and buffered modifications must be *reintegrated* (at volume
// granularity) to the file servers before a remote operation may observe
// them. Spectra's file-cache monitor and consistency manager are built on
// exactly these semantics, so this module reproduces them:
//
//   * FileServer  — authoritative store: file metadata + version numbers.
//   * CodaClient  — per-machine cache: LRU over a byte budget, fetch on
//     miss (timed over the simulated network), dirty buffering of writes,
//     volume-granularity reintegration, access tracing for monitors, and a
//     cache-state enumeration call whose cost grows with cache occupancy
//     (the paper measures 5.2 ms on an empty cache vs 359.6 ms on a full
//     one, caused by Coda writing the entire cache state to a temp file).
//
// Version numbers make staleness observable: a read returns the version it
// saw, so tests can prove that remote execution without reintegration reads
// stale data and that Spectra's consistency manager prevents this.
#pragma once

#include <deque>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fs/journal.h"
#include "hw/machine.h"
#include "net/network.h"
#include "util/stats.h"
#include "util/units.h"

namespace spectra::fs {

using hw::MachineId;
using util::Bytes;
using util::BytesPerSec;
using util::Seconds;

struct FileInfo {
  std::string path;
  Bytes size = 0.0;
  std::string volume;
};

// A single file access observed during an operation; consumed by the
// file-cache state monitor.
struct Access {
  std::string path;
  Bytes size = 0.0;
  bool write = false;
  bool cache_miss = false;
};

class FileServer {
 public:
  explicit FileServer(MachineId host) : host_(host) {}

  MachineId host() const { return host_; }

  // Create (or replace) a file. Version starts at 1.
  void create(const FileInfo& info);

  bool exists(const std::string& path) const;
  const FileInfo& info(const std::string& path) const;
  std::uint64_t version(const std::string& path) const;

  // Applied by reintegration: installs new content/size, bumps version.
  void install(const std::string& path, Bytes size, std::uint64_t version);

  std::vector<FileInfo> files_in_volume(const std::string& volume) const;

  // Copy the authoritative store from the same server in another world.
  void copy_state_from(const FileServer& src) { files_ = src.files_; }

 private:
  struct Entry {
    FileInfo info;
    std::uint64_t version = 1;
  };
  MachineId host_;
  std::map<std::string, Entry> files_;
};

struct CodaClientConfig {
  Bytes cache_capacity = 64.0 * 1024 * 1024;
  // Per-file fetch/reintegration RPC overhead on top of the bulk transfer.
  Seconds per_file_overhead = 0.02;
  // Reintegration ships the CML (log records) as well as data; effective
  // bytes = data * this factor.
  double reintegration_overhead = 1.3;
  // Coda's own prior estimate of its fetch rate, used until it has observed
  // real fetches (this is Coda's estimator, not Spectra's).
  BytesPerSec nominal_fetch_rate = 100.0 * 1024;
  // Cache-state enumeration cost model (the "inefficient interface" the
  // paper calls out): seconds = base + per_entry * cached_entries.
  Seconds cache_dump_base = 0.0002;
  Seconds cache_dump_per_entry = 0.00006;
};

class CodaClient {
 public:
  // `self_id` is the id this machine was registered under in `network`.
  CodaClient(MachineId self_id, hw::Machine& machine, net::Network& network,
             FileServer& server, CodaClientConfig config = {});

  MachineId self() const { return self_id_; }
  // Machine hosting this client's file server.
  MachineId file_server_host() const { return server_.host(); }

  // ---- cache state -----------------------------------------------------
  bool is_cached(const std::string& path) const;
  // Cached AND current with respect to the server (not stale).
  bool is_fresh(const std::string& path) const;
  std::size_t cached_count() const { return cache_.size(); }
  Bytes cached_bytes() const { return cached_bytes_; }

  // Instantly warm the cache (experiment setup, not timed).
  void warm(const std::string& path);
  void evict(const std::string& path);
  void evict_all();

  // Enumerate the cache, charging the client CPU for the enumeration the
  // way Coda's temp-file interface does. Used by the file-cache monitor.
  std::vector<FileInfo> dump_cache_state();

  // The paper measures the dump-everything interface at 359.6 ms on a full
  // cache and remarks "We plan to replace this interface with a more
  // efficient implementation" (§4.4). This is that implementation: an
  // incremental interface returning only the changes since a previously
  // returned generation, at cost proportional to the delta. When the change
  // journal no longer reaches back to `since`, a full resync is returned
  // (full-dump cost).
  struct CacheDelta {
    std::uint64_t generation = 0;  // pass back as `since` next time
    bool full_resync = false;      // added_or_updated is the complete cache
    std::vector<FileInfo> added_or_updated;
    std::vector<std::string> removed;
  };
  CacheDelta dump_cache_state_delta(std::uint64_t since);

  // Coda's estimate of the rate at which uncached data will be fetched.
  BytesPerSec estimated_fetch_rate() const;

  // ---- file operations (timed) ------------------------------------------
  // Read a file: fetches from the file server on miss or staleness
  // (advancing the clock), touches LRU, records the access when tracing.
  // Returns the version observed.
  std::uint64_t read(const std::string& path);

  // Modify a file locally: content is buffered in the cache and marked
  // dirty; the new version is invisible to other machines until the volume
  // is reintegrated. `new_size` of nullopt keeps the current size.
  void write(const std::string& path, std::optional<Bytes> new_size = {});

  // ---- dirty state / reintegration ---------------------------------------
  bool has_dirty_files() const { return !dirty_.empty(); }
  bool is_dirty(const std::string& path) const { return dirty_.count(path); }
  std::vector<FileInfo> dirty_files() const;
  std::vector<std::string> dirty_volumes() const;
  Bytes dirty_bytes_in_volume(const std::string& volume) const;

  // Push all buffered modifications in `volume` to the file server
  // (volume-granularity, as Coda does). Returns elapsed time. The push is
  // journaled (see fs/journal.h): an interrupted push is replayed or rolled
  // back by recover_reintegration before the next one starts.
  Seconds reintegrate_volume(const std::string& volume);
  Seconds reintegrate_all();

  // Resolve an interrupted reintegration, if any: re-push surviving
  // un-pushed records when the file server is reachable (idempotently
  // skipping files already installed), or abort the transaction when it is
  // not — un-pushed modifications stay buffered as dirty cache entries.
  // Returns elapsed (virtual) time; 0 when there was nothing to recover.
  Seconds recover_reintegration();

  const ReintegrationJournal& reintegration_log() const {
    return reintegration_log_;
  }

  // Structural consistency check for the chaos harness: cache accounting,
  // LRU bijection, dirty-set and journal invariants. Returns human-readable
  // violations; empty means consistent.
  std::vector<std::string> check_invariants() const;

  // ---- access tracing (for the file-cache monitor) -----------------------
  // Traces nest: the operation-wide monitor trace and a local RPC dispatch
  // trace may be active simultaneously; every access is recorded into all
  // active traces, and stop_trace pops the most recently started one.
  void start_trace();
  std::vector<Access> stop_trace();
  std::size_t active_traces() const { return traces_.size(); }

  // Copy cache/journal/dirty state from the same client in another world.
  // Rebuilds the per-entry LRU iterators against this client's own list
  // (a memberwise copy would alias the source's). No trace may be active
  // on either side.
  void copy_state_from(const CodaClient& src);

 private:
  struct CacheEntry {
    FileInfo info;
    std::uint64_t version = 0;
    std::list<std::string>::iterator lru_it;
  };

  void touch_lru(const std::string& path);
  void insert_entry(const FileInfo& info, std::uint64_t version);
  void evict_lru_until_fits(Bytes incoming);
  void record_access(const std::string& path, Bytes size, bool write,
                     bool miss);

  MachineId self_id_;
  hw::Machine& machine_;
  net::Network& network_;
  FileServer& server_;
  CodaClientConfig config_;

  void journal_event(bool removed, const FileInfo& info);

  std::map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // front = most recent
  Bytes cached_bytes_ = 0.0;
  std::set<std::string> dirty_;

  // Change journal for the incremental cache-state interface.
  struct CacheEvent {
    std::uint64_t generation = 0;
    bool removed = false;
    FileInfo info;
  };
  std::deque<CacheEvent> journal_;
  std::uint64_t generation_ = 0;
  std::uint64_t journal_start_gen_ = 1;  // oldest generation still recorded
  static constexpr std::size_t kMaxJournal = 1024;

  util::Ewma fetch_rate_{0.3};

  // Write-ahead journal for reintegration pushes (distinct from journal_,
  // the cache-event journal above).
  ReintegrationJournal reintegration_log_;

  std::vector<std::vector<Access>> traces_;  // stack of active traces
};

}  // namespace spectra::fs
