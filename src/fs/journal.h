// Write-ahead journal for crash-consistent reintegration (ISSUE 4).
//
// Reintegration pushes a volume's buffered modifications file by file over
// a faultable network; a partition or crash mid-push used to leave no
// record of how far the push got. The journal fixes that with standard WAL
// discipline:
//
//   begin()        — record the full intent (every file, size, version)
//                    before any bytes move; the transaction is kActive.
//   mark_pushed()  — after a file is durable at the server.
//   commit()       — every file pushed; the transaction is kCommitted.
//   abort()        — the push was abandoned (server unreachable at
//                    recovery); un-pushed modifications remain buffered as
//                    dirty cache entries, pushed ones are durable, so
//                    rollback is purely a bookkeeping transition.
//
// CodaClient::recover_reintegration replays an interrupted (still-kActive)
// transaction at the next opportunity: records already at the server are
// acknowledged idempotently, surviving un-pushed records are re-pushed, and
// superseded ones (a newer local write bumped the version) are left to the
// next reintegration of their volume. Journal bookkeeping itself costs zero
// virtual time — only the replayed transfers are timed.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/units.h"

namespace spectra::fs {

enum class TxnState { kActive, kCommitted, kAborted };

const char* to_string(TxnState s);

struct JournalFileRecord {
  std::string path;
  util::Bytes size = 0.0;
  std::uint64_t version = 0;
  bool pushed = false;
};

struct JournalTxn {
  std::uint64_t id = 0;
  std::string volume;
  util::Seconds started_at = 0.0;
  TxnState state = TxnState::kActive;
  std::vector<JournalFileRecord> files;

  bool fully_pushed() const;
};

class ReintegrationJournal {
 public:
  // Starts a transaction; at most one may be active at a time.
  std::uint64_t begin(const std::string& volume, util::Seconds now,
                      std::vector<JournalFileRecord> files);
  void mark_pushed(std::uint64_t txn_id, const std::string& path);
  void commit(std::uint64_t txn_id);
  void abort(std::uint64_t txn_id);

  bool has_open_txn() const;
  // Null when no transaction is active.
  const JournalTxn* open_txn() const;

  // Bounded history, oldest first; the open transaction (if any) is last.
  const std::deque<JournalTxn>& transactions() const { return txns_; }
  std::size_t committed() const { return committed_; }
  std::size_t aborted() const { return aborted_; }
  // Transactions that were recovered after an interruption (replayed or
  // rolled back), for tests and soak reporting.
  std::size_t recovered() const { return recovered_; }
  void note_recovery() { ++recovered_; }

  std::string to_string() const;

 private:
  JournalTxn& find(std::uint64_t txn_id);

  std::deque<JournalTxn> txns_;
  std::uint64_t next_id_ = 1;
  std::size_t committed_ = 0;
  std::size_t aborted_ = 0;
  std::size_t recovered_ = 0;
  static constexpr std::size_t kMaxHistory = 64;
};

}  // namespace spectra::fs
