// Figure 9: Relative utility for Pangloss-Lite.
//
// Utility achieved by Spectra's choice (decision overhead included)
// compared against an oracle with no overhead that always picks the
// best-measured alternative. The paper reports an average of 91% of the
// best utility across scenarios.
#include "pangloss_common.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main(int argc, char** argv) {
  BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Figure 9: Relative utility for Pangloss-Lite\n"
            << "(Spectra's achieved utility / zero-overhead oracle's best)\n\n";

  util::OnlineStats overall;
  for (const auto sc : {PanglossScenario::kBaseline,
                        PanglossScenario::kFileCache,
                        PanglossScenario::kCpu}) {
    util::Table table("Scenario: " + name(sc));
    table.set_header({"sentence (words)", "relative utility"});
    for (const int words : bench::pangloss_test_sentences()) {
      const auto cell = bench::run_pangloss_cell(batch, sc, words);
      table.add_row(
          {std::to_string(words), cell.relative_utility.cell(3)});
      overall.add(cell.relative_utility.stats.mean());
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << "Average relative utility across scenarios and sentences: "
            << util::Table::num(100.0 * overall.mean(), 1)
            << "% (paper: 91%)\n";
  return 0;
}
