// Figure 7: Latex energy usage (client Joules), small and large documents.
//
// The paper's key observation sits in the energy scenario: for the small
// document, execution on server B draws slightly less client energy than
// every other option (the client idles while B computes and the
// reintegration cost is common to all remote plans), so Spectra picks B
// even though local execution would be faster. For the large document B
// saves both time and energy.
#include "latex_common.h"

int main(int argc, char** argv) {
  spectra::scenario::BatchRunner batch(
      spectra::bench::jobs_from_args(argc, argv));
  const auto energy = [](const spectra::scenario::MeasuredRun& r) {
    return r.energy;
  };
  spectra::bench::run_latex_figure(
      batch, "Figure 7(a): Small document energy usage (Joules)", "small",
      energy, "energy (J)");
  spectra::bench::run_latex_figure(
      batch, "Figure 7(b): Large document energy usage (Joules)", "large",
      energy, "energy (J)");
  return 0;
}
