// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/batch.h"
#include "util/stats.h"
#include "util/table.h"

namespace spectra::bench {

// Worker count for a bench target: `--jobs=N` on the command line beats the
// SPECTRA_JOBS environment variable; 0 means one worker per hardware
// thread; default 1 (sequential). Table output is bit-identical for any N —
// runs are scheduled across workers but aggregated in a fixed order.
inline std::size_t jobs_from_args(int argc, char** argv) {
  long requested = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) requested = std::atol(arg.c_str() + 7);
  }
  if (requested < 0) {
    if (const char* env = std::getenv("SPECTRA_JOBS")) {
      requested = std::atol(env);
    }
  }
  if (requested < 0) return 1;
  return scenario::resolve_jobs(requested);
}

// Number of trials per data point (the paper uses 5 with 90% confidence
// intervals). Override with SPECTRA_TRIALS for quick runs.
inline int trial_count() {
  if (const char* env = std::getenv("SPECTRA_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

inline std::vector<std::uint64_t> trial_seeds() {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < trial_count(); ++i) {
    seeds.push_back(static_cast<std::uint64_t>(1000 + 17 * i));
  }
  return seeds;
}

struct Aggregate {
  util::OnlineStats stats;
  bool any_infeasible = false;

  std::string cell(int precision = 2) const {
    if (any_infeasible || stats.count() == 0) return "unavailable";
    return util::Table::num_ci(stats.mean(),
                               stats.confidence_halfwidth(0.90), precision);
  }
};

}  // namespace spectra::bench
