// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace spectra::bench {

// Number of trials per data point (the paper uses 5 with 90% confidence
// intervals). Override with SPECTRA_TRIALS for quick runs.
inline int trial_count() {
  if (const char* env = std::getenv("SPECTRA_TRIALS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

inline std::vector<std::uint64_t> trial_seeds() {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < trial_count(); ++i) {
    seeds.push_back(static_cast<std::uint64_t>(1000 + 17 * i));
  }
  return seeds;
}

struct Aggregate {
  util::OnlineStats stats;
  bool any_infeasible = false;

  std::string cell(int precision = 2) const {
    if (any_infeasible || stats.count() == 0) return "unavailable";
    return util::Table::num_ci(stats.mean(),
                               stats.confidence_halfwidth(0.90), precision);
  }
};

}  // namespace spectra::bench
