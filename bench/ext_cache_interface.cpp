// Extension: the efficient cache-state interface (§4.4 future work).
//
// The paper's overhead table blames its 359.6 ms pathological case on
// "an inefficient interface in which Coda writes the entire cache state to
// a temporary file. We plan to replace this interface with a more
// efficient implementation." This bench runs the Fig-10 null-operation
// measurement with the replacement — an incremental delta interface whose
// cost is proportional to cache *changes*, not cache size — and shows the
// full-cache blowup disappearing.
#include <iostream>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

// Cache-prediction wall time (ms) of a null decision on a world whose
// client cache holds `files` entries.
double cache_prediction_ms(bool incremental, std::size_t files) {
  WorldConfig wc;
  wc.testbed = Testbed::kOverhead;
  wc.overhead_servers = 1;
  wc.spectra.incremental_cache_interface = incremental;
  World world(wc);
  world.spectra().local_server().register_service(
      "noop", [](const rpc::Request&) {
        rpc::Response r;
        r.ok = true;
        r.payload = 64.0;
        return r;
      });
  core::OperationDesc desc;
  desc.name = "noop";
  desc.plans = {{"local", false}};
  desc.latency_fn = solver::inverse_latency();
  desc.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  world.spectra().register_fidelity(desc);
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "full/f" + std::to_string(i);
    world.file_server().create({path, 4096.0, "full"});
    world.coda(scenario::kClient).warm(path);
  }
  rpc::Request req;
  req.op_type = "noop";
  req.payload = 64.0;
  auto one = [&] {
    const auto choice = world.spectra().begin_fidelity_op("noop", {});
    world.spectra().do_local_op("noop", req);
    world.spectra().end_fidelity_op();
    return choice.wall_cache_prediction * 1000.0;
  };
  for (int i = 0; i < 16; ++i) one();  // train + warm the mirror
  double sum = 0.0;
  const int runs = 100;
  for (int i = 0; i < runs; ++i) sum += one();
  return sum / runs;
}

}  // namespace

int main() {
  std::cout << "Extension: incremental cache-state interface "
               "(replacing the paper's dump-everything Coda call)\n\n";
  util::Table table;
  table.set_header({"cached files", "dump-everything (ms)",
                    "incremental (ms)", "speedup"});
  for (const std::size_t files : {0u, 100u, 400u, 800u, 1600u}) {
    const double full = cache_prediction_ms(false, files);
    const double inc = cache_prediction_ms(true, files);
    table.add_row({std::to_string(files), util::Table::num(full, 4),
                   util::Table::num(inc, 4),
                   inc > 0.0 ? util::Table::num(full / inc, 1) + "x" : "-"});
  }
  std::cout << table.to_string();
  std::cout << "\nWith the old interface, file-cache prediction cost grows "
               "linearly with cache\noccupancy (the paper's 5.2 ms -> "
               "359.6 ms); the incremental interface pays only\nfor changes "
               "since the last decision, flat in cache size.\n";
  return 0;
}
