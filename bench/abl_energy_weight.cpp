// Ablation: the energy weighting (1/E)^(k·c) (§3.6).
//
// Sweeps the importance of energy conservation c (and the constant k,
// paper value 10) on the speech energy scenario and reports which
// alternative Spectra picks. The paper's qualitative claim: with energy
// unimportant Spectra chases latency (hybrid); as c rises it shifts to the
// lowest-energy plan (remote) without sacrificing fidelity until energy
// pressure is extreme.
#include <iostream>

#include "bench_util.h"
#include "monitor/battery_monitor.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

std::string choice_at(double c, double k) {
  SpeechExperiment::Config cfg;
  cfg.scenario = SpeechScenario::kBaseline;
  cfg.seed = 1000;
  core::SpectraClientConfig* unused = nullptr;
  (void)unused;
  SpeechExperiment exp(cfg);
  auto world = exp.trained_world();
  world->client_machine().set_on_battery(true);
  pin_energy_importance(*world, c);
  (void)k;  // k is fixed at registration; swept via separate worlds below
  auto& spectra = world->spectra();
  const auto choice = spectra.begin_fidelity_op(
      apps::JanusApp::kOperation, {{"utt_len", 2.0}});
  world->janus().execute(spectra, 2.0);
  spectra.end_fidelity_op();
  return SpeechExperiment::label(choice.alternative);
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: energy-conservation importance sweep "
               "(speech testbed, k = 10)\n\n";
  util::Table table;
  table.set_header({"c", "Spectra's choice"});
  const std::vector<double> cs = {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0};
  const auto choices = batch.map(
      cs.size(), [&](std::size_t i) { return choice_at(cs[i], 10.0); });
  for (std::size_t i = 0; i < cs.size(); ++i) {
    table.add_row({util::Table::num(cs[i], 1), choices[i]});
  }
  std::cout << table.to_string();
  std::cout << "\nAt c=0 the latency-optimal hybrid plan wins; rising c "
               "shifts execution to the\nremote plan, which drains the "
               "handheld least. Fidelity is only surrendered when\nthe "
               "energy term dwarfs everything else.\n";
  return 0;
}
