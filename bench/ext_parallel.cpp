// Extension: parallel execution plans (§4.3).
//
// "Spectra is limited by its execution model which currently supports only
//  sequential execution. We plan to explore execution plans that support
//  parallel execution. For Pangloss-Lite, this would yield considerable
//  benefit: the three engines could be executed in parallel on different
//  servers."
//
// This bench prototypes that future work on the simulated testbed: a
// translation pipeline that ships requests to its engines, runs the engine
// computations concurrently (hw::run_parallel — machines that finish early
// idle while the stragglers run), then combines the results in the language
// modeler. It reports sequential vs parallel wall time for the interesting
// placements across sentence sizes.
#include <iostream>

#include "bench_util.h"
#include "hw/parallel.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

using apps::PanglossApp;

struct Placement {
  const char* label;
  // Machine per component (engines + LM); kClient = local.
  MachineId ebmt, gloss, dict, lm;
};

// One parallel translation: request transfers serialize on the client's
// link, engine computation overlaps across machines, responses return, LM
// combines. Returns elapsed virtual time.
util::Seconds translate_parallel(World& w, int words, const Placement& p) {
  const auto& cfg = w.pangloss().config();
  auto& engine = w.engine();
  const util::Seconds t0 = engine.now();

  const MachineId comps[4] = {p.ebmt, p.gloss, p.dict, p.lm};
  const util::Bytes request =
      cfg.request_bytes_per_word * words + cfg.fixed_bytes;
  const util::Bytes response =
      cfg.response_bytes_per_word * words + cfg.fixed_bytes;

  // Ship requests and fault in data files (network serializes anyway).
  std::vector<hw::ParallelWork> work;
  for (int c = 0; c <= PanglossApp::kLm; ++c) {
    if (c == PanglossApp::kLm) break;  // LM runs after the engines
    const MachineId where = comps[c];
    if (where != kClient) w.network().transfer(kClient, where, request);
    w.coda(where).read(cfg.components[c].file_path);
    work.push_back({&w.machine(where),
                    cfg.components[c].base_cycles +
                        cfg.components[c].cycles_per_word * words,
                    false});
  }

  // The engines overlap.
  hw::run_parallel(engine, work);

  // Results flow to the language modeler's machine, then it combines.
  for (int c = 0; c < PanglossApp::kLm; ++c) {
    if (comps[c] != p.lm) w.network().transfer(comps[c], p.lm, response);
  }
  w.coda(p.lm).read(cfg.components[PanglossApp::kLm].file_path);
  w.machine(p.lm).run_cycles(
      cfg.components[PanglossApp::kLm].base_cycles +
      cfg.components[PanglossApp::kLm].cycles_per_word * words);
  if (p.lm != kClient) w.network().transfer(p.lm, kClient, response);
  return engine.now() - t0;
}

util::Seconds translate_sequential(World& w, int words, const Placement& p) {
  const auto& cfg = w.pangloss().config();
  auto& engine = w.engine();
  const util::Seconds t0 = engine.now();
  const MachineId comps[4] = {p.ebmt, p.gloss, p.dict, p.lm};
  const util::Bytes request =
      cfg.request_bytes_per_word * words + cfg.fixed_bytes;
  const util::Bytes response =
      cfg.response_bytes_per_word * words + cfg.fixed_bytes;
  for (int c = 0; c <= PanglossApp::kLm; ++c) {
    const MachineId where = comps[c];
    if (where != kClient) w.network().transfer(kClient, where, request);
    w.coda(where).read(cfg.components[c].file_path);
    w.machine(where).run_cycles(cfg.components[c].base_cycles +
                                cfg.components[c].cycles_per_word * words);
    if (where != kClient) w.network().transfer(where, kClient, response);
  }
  return engine.now() - t0;
}

}  // namespace

int main() {
  std::cout << "Extension: parallel execution plans for Pangloss-Lite "
               "(paper §4.3 future work)\n\n";

  const Placement placements[] = {
      {"all on B (paper's sequential best)", kServerB, kServerB, kServerB,
       kServerB},
      {"engines spread: ebmt@B gloss@A dict@local lm@B", kServerB, kServerA,
       kClient, kServerB},
      {"engines spread: ebmt@B gloss@A dict@A lm@client", kServerB, kServerA,
       kServerA, kClient},
  };

  for (const auto& p : placements) {
    util::Table table(std::string("Placement: ") + p.label);
    table.set_header(
        {"sentence (words)", "sequential (s)", "parallel (s)", "speedup"});
    for (const int words : {6, 10, 14, 38, 44}) {
      WorldConfig wc;
      wc.testbed = Testbed::kThinkpad;
      wc.seed = 1000;
      World seq_world(wc);
      seq_world.warm_all_caches();
      World par_world(wc);
      par_world.warm_all_caches();
      const double seq = translate_sequential(seq_world, words, p);
      const double par = translate_parallel(par_world, words, p);
      table.add_row({std::to_string(words), util::Table::num(seq, 2),
                     util::Table::num(par, 2),
                     util::Table::num(seq / par, 2) + "x"});
    }
    std::cout << table.to_string() << "\n";
  }
  std::cout << "Overlap buys ~1.5x within a placement that spreads engines "
               "across machines, letting a\nspread placement match the "
               "fastest single server — on a testbed where server B is\n"
               "2.3x faster than A. With comparably fast servers the spread "
               "+ overlap plan wins outright,\nwhich is the \"considerable "
               "benefit\" the paper predicts for parallel execution plans.\n";
  return 0;
}
