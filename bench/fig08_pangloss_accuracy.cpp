// Figure 8: Accuracy for Pangloss-Lite.
//
// For each scenario and test sentence, every one of the ~97 combinations of
// location and fidelity is measured; alternatives are ranked by the utility
// they achieved, and the bar shows the percentile into which Spectra's
// chosen alternative falls (99 = the best possible choice).
#include "pangloss_common.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main(int argc, char** argv) {
  BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Figure 8: Accuracy for Pangloss-Lite\n"
            << "(percentile of Spectra's chosen alternative, ranked by "
               "achieved utility; "
            << PanglossExperiment::alternatives().size()
            << " alternatives)\n\n";

  for (const auto sc : {PanglossScenario::kBaseline,
                        PanglossScenario::kFileCache,
                        PanglossScenario::kCpu}) {
    util::Table table("Scenario: " + name(sc));
    table.set_header({"sentence (words)", "percentile", "Spectra chose"});
    for (const int words : bench::pangloss_test_sentences()) {
      const auto cell = bench::run_pangloss_cell(batch, sc, words);
      std::string mode;
      int best_count = 0;
      for (const auto& [label, count] : cell.chosen) {
        if (count > best_count) {
          mode = label;
          best_count = count;
        }
      }
      table.add_row({std::to_string(words), cell.percentile.cell(1), mode});
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
