// Shared driver for the Pangloss figures (8: accuracy percentile, 9:
// relative utility vs a zero-overhead oracle).
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

namespace spectra::bench {

struct PanglossCell {
  // Percentile of Spectra's chosen alternative among all alternatives
  // ranked by achieved utility (Fig 8; 99 = best choice).
  Aggregate percentile;
  // Spectra's achieved utility / the oracle's best utility (Fig 9).
  Aggregate relative_utility;
  std::map<std::string, int> chosen;
};

inline PanglossCell run_pangloss_cell(scenario::PanglossScenario sc,
                                      int words) {
  using scenario::PanglossExperiment;
  PanglossCell cell;
  const auto alts = PanglossExperiment::alternatives();
  for (const auto seed : trial_seeds()) {
    PanglossExperiment::Config cfg;
    cfg.scenario = sc;
    cfg.seed = seed;
    cfg.test_words = words;
    PanglossExperiment experiment(cfg);

    std::vector<double> utilities;
    double best = 0.0;
    for (const auto& alt : alts) {
      const auto run = experiment.measure(alt);
      const double u = PanglossExperiment::achieved_utility(run, alt);
      utilities.push_back(u);
      best = std::max(best, u);
    }
    const auto s = experiment.run_spectra();
    const double su =
        PanglossExperiment::achieved_utility(s, s.choice.alternative);
    cell.percentile.stats.add(util::percentile_rank(utilities, su));
    cell.relative_utility.stats.add(best > 0.0 ? su / best : 0.0);
    ++cell.chosen[PanglossExperiment::label(s.choice.alternative)];
  }
  return cell;
}

inline const std::vector<int>& pangloss_test_sentences() {
  // Five test sentences; the three smallest should keep all engines, the
  // two largest should drop the glossary (paper §4.3).
  static const std::vector<int> kWords = {6, 10, 14, 38, 44};
  return kWords;
}

}  // namespace spectra::bench
