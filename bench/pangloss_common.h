// Shared driver for the Pangloss figures (8: accuracy percentile, 9:
// relative utility vs a zero-overhead oracle).
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

namespace spectra::bench {

struct PanglossCell {
  // Percentile of Spectra's chosen alternative among all alternatives
  // ranked by achieved utility (Fig 8; 99 = best choice).
  Aggregate percentile;
  // Spectra's achieved utility / the oracle's best utility (Fig 9).
  Aggregate relative_utility;
  std::map<std::string, int> chosen;
};

// Trials fan out across the batch runner (seeds x ~97 alternatives,
// nested); the cell's statistics are accumulated afterwards in seed order,
// so results are bit-identical for any --jobs.
inline PanglossCell run_pangloss_cell(scenario::BatchRunner& batch,
                                      scenario::PanglossScenario sc,
                                      int words) {
  using scenario::PanglossExperiment;
  const auto alts = PanglossExperiment::alternatives();
  const auto seeds = trial_seeds();

  struct Trial {
    std::vector<double> utilities;  // one per alternative, in order
    double spectra_utility = 0.0;
    std::string spectra_label;
  };
  const auto trials = batch.map(seeds.size(), [&](std::size_t t) {
    PanglossExperiment::Config cfg;
    cfg.scenario = sc;
    cfg.seed = seeds[t];
    cfg.test_words = words;
    const PanglossExperiment experiment(cfg);
    Trial out;
    out.utilities = batch.map(alts.size(), [&](std::size_t a) {
      const auto run = experiment.measure(alts[a]);
      return PanglossExperiment::achieved_utility(run, alts[a]);
    });
    const auto s = experiment.run_spectra();
    out.spectra_utility =
        PanglossExperiment::achieved_utility(s, s.choice.alternative);
    out.spectra_label = PanglossExperiment::label(s.choice.alternative);
    return out;
  });

  PanglossCell cell;
  for (const auto& trial : trials) {
    double best = 0.0;
    for (const double u : trial.utilities) best = std::max(best, u);
    cell.percentile.stats.add(
        util::percentile_rank(trial.utilities, trial.spectra_utility));
    cell.relative_utility.stats.add(
        best > 0.0 ? trial.spectra_utility / best : 0.0);
    ++cell.chosen[trial.spectra_label];
  }
  return cell;
}

inline const std::vector<int>& pangloss_test_sentences() {
  // Five test sentences; the three smallest should keep all engines, the
  // two largest should drop the glossary (paper §4.3).
  static const std::vector<int> kWords = {6, 10, 14, 38, 44};
  return kWords;
}

}  // namespace spectra::bench
