// Ablation: heuristic vs exhaustive solver (§3.6).
//
// The heuristic solver is "not guaranteed to select the optimal alternative
// — however, it usually selects a very good option". This ablation compares
// the two on synthetic alternative spaces of growing size: utility gap and
// evaluation counts.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "solver/solver.h"
#include "util/rng.h"

using namespace spectra;         // NOLINT
using namespace spectra::solver; // NOLINT

namespace {

AlternativeSpace make_space(int plans, int servers, int fid_dims) {
  AlternativeSpace s;
  for (int i = 0; i < plans; ++i) {
    s.plans.push_back({"p" + std::to_string(i), i != 0});
  }
  for (int i = 0; i < servers; ++i) s.servers.push_back(i + 1);
  for (int i = 0; i < fid_dims; ++i) {
    s.fidelities.push_back({"f" + std::to_string(i), {0.0, 0.5, 1.0}});
  }
  return s;
}

// A Spectra-shaped utility: smooth base (placement/fidelity preferences)
// plus mild interaction terms.
EvalFn make_utility(std::uint64_t seed, const AlternativeSpace& space) {
  util::Rng rng(seed);
  const double wp = rng.uniform(-0.2, 0.2);
  const double ws = rng.uniform(-0.5, 0.5);
  std::vector<double> wf;
  for (std::size_t i = 0; i < space.fidelities.size(); ++i) {
    wf.push_back(rng.uniform(-1.0, 1.5));
  }
  const double interact = rng.uniform(-0.3, 0.3);
  return [=](const Alternative& a) {
    double u = wp * a.plan + ws * a.server;
    std::size_t i = 0;
    double fsum = 0.0;
    for (const auto& [k, v] : a.fidelity) {
      (void)k;
      u += wf[i++] * v;
      fsum += v;
    }
    u += interact * fsum * (a.plan % 3);
    return u;
  };
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(spectra::bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: heuristic solver vs exhaustive search\n\n";
  util::Table table;
  table.set_header({"space size", "gap, fixed budget (%)",
                    "evals (fixed)", "memo hits (fixed)",
                    "gap, scaled budget (%)", "evals (scaled)"});

  for (const auto& [plans, servers, fids] :
       {std::tuple{4, 2, 1}, {8, 2, 2}, {16, 2, 3}, {16, 4, 3},
        {24, 6, 3}}) {
    const auto space = make_space(plans, servers, fids);
    const std::size_t size = space.count();
    struct SeedResult {
      double gap_fixed = 0.0, evals_fixed = 0.0, hits_fixed = 0.0;
      double gap_scaled = 0.0, evals_scaled = 0.0;
    };
    // Independent per seed (own Rng, pure eval fn); aggregated in seed
    // order afterwards, so the table is identical for any --jobs.
    const auto per_seed = batch.map(40, [&](std::size_t i) {
      const auto seed = static_cast<std::uint64_t>(i);
      const auto eval = make_utility(seed, space);
      ExhaustiveSolver ex;
      const auto best = ex.solve(space, eval);
      const double span =
          std::abs(best.log_utility) > 1e-9 ? std::abs(best.log_utility)
                                            : 1.0;
      SeedResult out;
      auto run = [&](std::size_t budget, double& gap, double& evals,
                     double* hits) {
        HeuristicSolverConfig cfg;
        cfg.exhaustive_threshold = 0;  // force hill climbing
        cfg.max_evaluations = budget;
        cfg.restarts = 4 + budget / 128;
        HeuristicSolver h(util::Rng(seed * 31 + 5), cfg);
        const auto got = h.solve(space, eval);
        gap = 100.0 * (best.log_utility - got.log_utility) / span;
        evals = static_cast<double>(got.evaluations);
        if (hits != nullptr) *hits = static_cast<double>(got.memo_hits);
      };
      run(192, out.gap_fixed, out.evals_fixed,  // Spectra's default
          &out.hits_fixed);
      run(std::max<std::size_t>(192, size / 4),  // budget grows with space
          out.gap_scaled, out.evals_scaled, nullptr);
      return out;
    });
    util::OnlineStats gap_fixed, evals_fixed, hits_fixed, gap_scaled,
        evals_scaled;
    for (const auto& r : per_seed) {
      gap_fixed.add(r.gap_fixed);
      evals_fixed.add(r.evals_fixed);
      hits_fixed.add(r.hits_fixed);
      gap_scaled.add(r.gap_scaled);
      evals_scaled.add(r.evals_scaled);
    }
    table.add_row({std::to_string(size),
                   util::Table::num(gap_fixed.mean(), 2),
                   util::Table::num(evals_fixed.mean(), 0),
                   util::Table::num(hits_fixed.mean(), 0),
                   util::Table::num(gap_scaled.mean(), 2),
                   util::Table::num(evals_scaled.mean(), 0)});
  }
  std::cout << table.to_string();
  std::cout << "\nHill climbing with the default budget stays near-optimal "
               "through Pangloss-sized spaces\n(~250 alternatives) and "
               "degrades gracefully beyond; scaling the budget with the\n"
               "space recovers quality at a cost that is still a fraction "
               "of exhaustive search.\n"
               "Memo hits are restart/neighbour revisits answered from the "
               "integer-coordinate memo\n(a vector<int> key; the original "
               "ostringstream key both stringified every lookup and\nbuilt "
               "the Alternative twice), so hill climbing pays eval() only "
               "once per distinct point.\n";
  return 0;
}
