// Shared driver for the Latex figures (5, 6: time; 7: energy).
#pragma once

#include <functional>
#include <iostream>
#include <map>
#include <string>

#include "bench_util.h"
#include "scenario/experiment.h"

namespace spectra::bench {

// metric: extracts the reported value from a run (time or energy).
inline void run_latex_figure(
    const std::string& title, const std::string& doc,
    const std::function<double(const scenario::MeasuredRun&)>& metric,
    const std::string& unit) {
  using scenario::LatexExperiment;
  using scenario::LatexScenario;

  const auto scenarios = {LatexScenario::kBaseline,
                          LatexScenario::kFileCache,
                          LatexScenario::kReintegrate, LatexScenario::kEnergy};
  const auto alternatives = LatexExperiment::alternatives();

  std::cout << title << "\n\n";
  for (const auto scenario : scenarios) {
    std::map<std::string, Aggregate> by_alt;
    Aggregate spectra_agg;
    std::map<std::string, int> chosen_count;

    for (const auto seed : trial_seeds()) {
      LatexExperiment::Config cfg;
      cfg.scenario = scenario;
      cfg.doc = doc;
      cfg.seed = seed;
      LatexExperiment experiment(cfg);
      for (const auto& alt : alternatives) {
        const auto run = experiment.measure(alt);
        auto& agg = by_alt[LatexExperiment::label(alt)];
        if (run.feasible) {
          agg.stats.add(metric(run));
        } else {
          agg.any_infeasible = true;
        }
      }
      const auto s = experiment.run_spectra();
      spectra_agg.stats.add(metric(s));
      ++chosen_count[LatexExperiment::label(s.choice.alternative)];
    }

    std::string s_label;
    int s_count = 0;
    for (const auto& [label, count] : chosen_count) {
      if (count > s_count) {
        s_label = label;
        s_count = count;
      }
    }

    util::Table table("Scenario: " + scenario::name(scenario) + " — " + doc +
                      " document");
    table.set_header({"alternative", unit, ""});
    for (const auto& alt : alternatives) {
      const std::string label = LatexExperiment::label(alt);
      table.add_row({label, by_alt[label].cell(),
                     label == s_label ? "<-- S (Spectra's choice)" : ""});
    }
    table.add_separator();
    table.add_row({"Spectra (w/ overhead)", spectra_agg.cell(), ""});
    std::cout << table.to_string() << '\n';
  }
}

}  // namespace spectra::bench
