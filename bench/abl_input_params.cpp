// Ablation: modeling input parameters (§2.4).
//
// The paper argues that a little application-specific knowledge — here, the
// sentence length that drives Pangloss-Lite's cost — buys substantially
// better predictions. This ablation compares the full predictor against one
// whose continuous features are hidden (every demand collapses to a
// recency-weighted mean), reporting prediction error of total operation
// time and the quality of the resulting choices.
#include <iostream>

#include "bench_util.h"
#include "pangloss_common.h"
#include "scenario/experiment.h"
#include "solver/estimator.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

// Measure |predicted - actual| time of the all-engines-on-B alternative for
// several sentence lengths, with and without the length feature.
void run(scenario::BatchRunner& batch, bool strip_params) {
  util::Table table(strip_params
                        ? "WITHOUT input-parameter modeling (ablated)"
                        : "WITH input-parameter modeling (Spectra default)");
  table.set_header({"sentence (words)", "predicted T (s)", "actual T (s)",
                    "abs error (%)"});
  util::OnlineStats errors;

  struct SentenceResult {
    double predicted = 0.0;
    double actual = 0.0;
    double err = 0.0;
  };
  const auto& sentences = bench::pangloss_test_sentences();
  const auto results = batch.map(sentences.size(), [&](std::size_t i) {
    const int words = sentences[i];
    PanglossExperiment::Config cfg;
    cfg.seed = 1000;
    cfg.test_words = words;
    PanglossExperiment exp(cfg);
    auto world = exp.trained_world();
    auto& spectra = world->spectra();

    const auto alt = apps::PanglossApp::alternative(0b1111, true, true, true,
                                                    kServerB);
    std::map<std::string, double> params{
        {"words", static_cast<double>(words)}};
    // A parameter-blind predictor treats every sentence as typical: it can
    // only answer with demand at the average training length.
    if (strip_params) params["words"] = 24.0;

    const auto candidates = spectra.server_db().available_servers();
    const auto snapshot =
        spectra.monitors().build_snapshot(candidates, world->engine().now());
    solver::AlternativeSpace space;
    for (int m = 0; m < apps::PanglossApp::kPlanCount; ++m) {
      space.plans.push_back({"p", m != 0});
    }
    space.servers = candidates;
    solver::EstimatorInputs inputs;
    inputs.snapshot = &snapshot;
    const auto demand = spectra.predict_demand(
        apps::PanglossApp::kOperation, params, "", alt);
    const auto metrics =
        solver::ExecutionEstimator().estimate(inputs, space, alt, demand);

    const auto actual = exp.measure(alt);
    SentenceResult r;
    r.predicted = metrics ? metrics->time : 0.0;
    r.actual = actual.time;
    r.err = 100.0 * std::abs(r.predicted - r.actual) / r.actual;
    return r;
  });
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    const auto& r = results[i];
    errors.add(r.err);
    table.add_row({std::to_string(sentences[i]),
                   util::Table::num(r.predicted, 2),
                   util::Table::num(r.actual, 2), util::Table::num(r.err, 1)});
  }
  std::cout << table.to_string();
  std::cout << "mean absolute error: " << util::Table::num(errors.mean(), 1)
            << "%\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: input-parameter modeling (Pangloss sentence "
               "length)\n\n";
  run(batch, /*strip_params=*/false);
  run(batch, /*strip_params=*/true);
  std::cout << "Without the parameter the models can only answer with "
               "recency-weighted means,\nso predictions are only accurate "
               "near the average training sentence length.\n";
  return 0;
}
