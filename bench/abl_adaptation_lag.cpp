// Ablation: adaptation lag.
//
// Spectra's knowledge of the environment comes from periodic status polls
// (5 s), the passive network log, and run-queue smoothing — so there is a
// window after an environment change in which decisions still reflect the
// old world. This bench measures it: apply a change, wait `settle` seconds,
// and record Spectra's choice. The paper's scenarios implicitly grant the
// monitors time to observe; this quantifies how much they need.
#include <iostream>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

using apps::JanusApp;

std::string choice_after(SpeechScenario scenario, double settle) {
  SpeechExperiment::Config cfg;
  cfg.seed = 1000;
  cfg.scenario = SpeechScenario::kBaseline;  // train on baseline
  SpeechExperiment exp(cfg);
  auto world = exp.trained_world();
  apply(*world, scenario);  // the change happens NOW
  world->settle(settle);
  const auto choice = world->spectra().begin_fidelity_op(
      JanusApp::kOperation, {{"utt_len", 2.0}});
  world->janus().execute(world->spectra(), 2.0);
  world->spectra().end_fidelity_op();
  return SpeechExperiment::label(choice.alternative);
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: adaptation lag — Spectra's choice as a function "
               "of time since the\nenvironment changed (speech testbed; "
               "status polls every 5 s).\n\n";

  struct Case {
    SpeechScenario scenario;
    const char* eventual;  // the correct post-change choice
  };
  const Case cases[] = {
      {SpeechScenario::kCpu, "remote-full"},
      {SpeechScenario::kFileCache, "local-reduced"},
  };

  for (const auto& c : cases) {
    util::Table table("Change: " + name(c.scenario) +
                      " (correct choice after adaptation: " +
                      std::string(c.eventual) + ")");
    table.set_header({"seconds since change", "Spectra's choice", ""});
    const std::vector<double> settles = {0.0, 1.0, 2.0, 5.0, 10.0, 20.0};
    const auto choices = batch.map(settles.size(), [&](std::size_t i) {
      return choice_after(c.scenario, settles[i]);
    });
    for (std::size_t i = 0; i < settles.size(); ++i) {
      table.add_row({util::Table::num(settles[i], 0), choices[i],
                     choices[i] == c.eventual ? "adapted" : "stale"});
    }
    std::cout << table.to_string() << "\n";
  }
  std::cout << "Partitions are detected at the first failed poll; load "
               "changes need the run-queue\nsmoothing and a status poll to "
               "propagate — one polling period in practice.\n";
  return 0;
}
