// Figure 6: Latex execution time for the large (123-page) document.
// Scenarios and alternatives as in Figure 5. The paper's shape: server B
// wins the baseline and reintegrate scenarios (the predicted file set of
// the large document does not include the modified small-document input,
// so no reintegration is forced); a cold server B loses to server A.
#include "latex_common.h"

int main(int argc, char** argv) {
  spectra::scenario::BatchRunner batch(
      spectra::bench::jobs_from_args(argc, argv));
  spectra::bench::run_latex_figure(
      batch, "Figure 6: Large document (123 pages) execution time (seconds)",
      "large",
      [](const spectra::scenario::MeasuredRun& r) { return r.time; },
      "time (s)");
  return 0;
}
