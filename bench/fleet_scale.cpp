// fleet_scale: fleet-world scaling bench.
//
// Runs the FleetScenario/FleetWorld stack at increasing client counts
// against a shared server pool and reports, per scale:
//
//   * deterministic outcomes — ops completed, remote share, rejections,
//     p50/p99 end-to-end latency (virtual time), mean server utilization,
//     aggregate energy, Jain's fairness index, and the state fingerprint
//     (the stdout table carries only these, so its bytes are identical for
//     any --jobs);
//   * wall-clock throughput — decisions/sec and decision-latency
//     percentiles, reported only in the --json output's "wall" sections.
//
// Usage: fleet_scale [--json=FILE] [--jobs=N] [--clients=N] [--policy=wfq]
//                    [--islands=N] [--lookahead=SECS] [--workload=speech]
//        fleet_scale --detect-concurrency
//
// --clients=N runs a single scale of N clients (servers scale as N/125,
// min 2) instead of the default ladder. --islands/--lookahead/--workload
// forward to FleetConfig (islands=0 = auto shard; the scaling-curve stage
// of scripts/bench.sh sweeps --jobs at fixed islands and reads the
// events_per_sec field from the JSON). --detect-concurrency prints the
// hardware concurrency the thread pool actually sees (used by
// scripts/bench.sh to annotate results honestly on constrained hosts).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/admission.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "scenario/fleet.h"
#include "util/table.h"

using namespace spectra;            // NOLINT
using namespace spectra::scenario;  // NOLINT

namespace {

struct Scale {
  std::size_t clients;
  std::size_t servers;
};

struct Knobs {
  std::size_t islands = 0;
  double lookahead = 0.0;
  FleetWorkload workload = FleetWorkload::kMixed;
};

FleetConfig config_for(const Scale& scale, core::AdmissionPolicy policy,
                       const Knobs& knobs) {
  FleetConfig cfg;
  cfg.clients = scale.clients;
  cfg.servers = scale.servers;
  cfg.seed = 42;
  cfg.horizon = 120.0;
  cfg.admission.policy = policy;
  cfg.islands = knobs.islands;
  cfg.lookahead = knobs.lookahead;
  cfg.workload = knobs.workload;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t single_clients = 0;
  core::AdmissionPolicy policy = core::AdmissionPolicy::kWeightedFair;
  Knobs knobs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--detect-concurrency") {
      // What the pool would actually use for --jobs=0: one worker per
      // hardware thread (floor 1). bench.sh records both numbers.
      const std::size_t hw = exec::ThreadPool::hardware_concurrency();
      exec::ThreadPool pool(scenario::resolve_jobs(0));
      std::cout << "hardware_concurrency " << hw << "\n"
                << "pool_workers " << pool.size() << "\n";
      return 0;
    }
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--clients=", 0) == 0) {
      single_clients = static_cast<std::size_t>(
          std::atol(arg.c_str() + 10));
    }
    if (arg == "--policy=fifo") policy = core::AdmissionPolicy::kFifo;
    if (arg.rfind("--islands=", 0) == 0) {
      knobs.islands = static_cast<std::size_t>(std::atol(arg.c_str() + 10));
    }
    if (arg.rfind("--lookahead=", 0) == 0) {
      knobs.lookahead = std::atof(arg.c_str() + 12);
    }
    if (arg == "--workload=speech") knobs.workload = FleetWorkload::kSpeech;
  }
  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  std::vector<Scale> scales;
  if (single_clients > 0) {
    scales.push_back({single_clients,
                      std::max<std::size_t>(2, single_clients / 125)});
  } else {
    scales = {{64, 2}, {256, 4}, {1000, 8}};
  }

  util::Table table("fleet scaling (policy=" +
                    std::string(core::to_string(policy)) +
                    ", jobs=" + std::to_string(jobs) + ")");
  table.set_header({"clients", "servers", "isl", "ops", "remote%", "xisl",
                    "rejected", "p50 s", "p99 s", "util", "energy kJ",
                    "jain", "fingerprint"});

  std::vector<FleetReport> reports;
  for (const Scale& scale : scales) {
    const FleetConfig cfg = config_for(scale, policy, knobs);
    const FleetReport r = run_fleet(cfg, jobs, nullptr);
    reports.push_back(r);
    const double remote_pct =
        r.ops_completed > 0
            ? 100.0 * static_cast<double>(r.ops_remote) /
                  static_cast<double>(r.ops_completed)
            : 0.0;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    table.add_row({std::to_string(r.clients), std::to_string(r.servers),
                   std::to_string(r.islands),
                   std::to_string(r.ops_completed),
                   util::Table::num(remote_pct, 1),
                   std::to_string(r.ops_cross_island),
                   std::to_string(r.ops_rejected),
                   util::Table::num(r.latency_p50_s, 3),
                   util::Table::num(r.latency_p99_s, 3),
                   util::Table::num(r.server_utilization_mean, 3),
                   util::Table::num(r.aggregate_energy_j / 1e3, 2),
                   util::Table::num(r.jain_fairness, 4), fp});
  }
  table.render(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"fleet_scale\",\n";
    out << "  \"policy\": \"" << core::to_string(policy) << "\",\n";
    out << "  \"jobs\": " << jobs << ",\n";
    out << "  \"scales\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      // FleetReport::to_json is a pretty-printed object; indent it into
      // the array.
      std::string body = reports[i].to_json();
      std::string indented = "    ";
      for (char c : body) {
        indented.push_back(c);
        if (c == '\n') indented += "    ";
      }
      while (!indented.empty() &&
             (indented.back() == ' ' || indented.back() == '\n')) {
        indented.pop_back();
      }
      out << indented << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}
