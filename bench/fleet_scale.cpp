// fleet_scale: fleet-world scaling bench.
//
// Runs the FleetScenario/FleetWorld stack at increasing client counts
// against a shared server pool and reports, per scale:
//
//   * deterministic outcomes — ops completed, remote share, rejections,
//     p50/p99 end-to-end latency (virtual time), mean server utilization,
//     aggregate energy, Jain's fairness index, and the state fingerprint
//     (the stdout table carries only these, so its bytes are identical for
//     any --jobs);
//   * wall-clock throughput — decisions/sec and decision-latency
//     percentiles, reported only in the --json output's "wall" sections;
//   * memory — peak RSS and allocator high-water, reported only in the
//     --json output's "mem" section (bytes-per-client is meaningful when a
//     single scale runs per process, which is how scripts/bench.sh drives
//     the ladder for BENCH_fleet.json).
//
// Usage: fleet_scale [--json=FILE] [--jobs=N] [--clients=N] [--servers=N]
//                    [--policy=fifo|wfq] [--islands=N] [--lookahead=SECS]
//                    [--workload=mixed|speech]
//        fleet_scale --detect-concurrency
//
// --clients=N runs a single scale of N clients (servers default to N/125,
// min 2; override with --servers) instead of the default ladder
// 64/256/1000/10k/100k. Options are validated against the fleet_scale
// entry in cli/flags.cpp — an unknown flag, a zero/negative count, or an
// absurd scale prints usage and exits 2 before any work starts.
// --islands/--lookahead/--workload forward to FleetConfig (islands=0 =
// auto shard; the scaling-curve stage of scripts/bench.sh sweeps --jobs at
// fixed islands and reads the events_per_sec field from the JSON).
// --detect-concurrency prints the hardware concurrency the thread pool
// actually sees (used by scripts/bench.sh to annotate results honestly on
// constrained hosts).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cli/args.h"
#include "cli/flags.h"
#include "core/admission.h"
#include "exec/thread_pool.h"
#include "obs/memaudit.h"
#include "obs/trace.h"
#include "scenario/fleet.h"
#include "util/assert.h"
#include "util/table.h"

using namespace spectra;            // NOLINT
using namespace spectra::scenario;  // NOLINT

namespace {

// Largest fleet the bench will attempt: past this the world would not fit
// commodity memory and a typo (--clients=10000000) should fail fast, not
// OOM the host.
constexpr long kMaxClients = 2'000'000;
constexpr long kMaxServers = 50'000;
constexpr long kMaxIslands = 4'096;

struct Scale {
  std::size_t clients;
  std::size_t servers;
};

struct Knobs {
  std::size_t islands = 0;
  double lookahead = 0.0;
  FleetWorkload workload = FleetWorkload::kMixed;
};

FleetConfig config_for(const Scale& scale, core::AdmissionPolicy policy,
                       const Knobs& knobs) {
  FleetConfig cfg;
  cfg.clients = scale.clients;
  cfg.servers = scale.servers;
  cfg.seed = 42;
  cfg.horizon = 120.0;
  cfg.admission.policy = policy;
  cfg.islands = knobs.islands;
  cfg.lookahead = knobs.lookahead;
  cfg.workload = knobs.workload;
  return cfg;
}

int usage(std::ostream& out) {
  out << "usage: fleet_scale [--json=FILE] [--jobs=N] [--clients=N]\n"
         "                   [--servers=N] [--policy=fifo|wfq] [--islands=N]\n"
         "                   [--lookahead=SECS] [--workload=mixed|speech]\n"
         "       fleet_scale --detect-concurrency\n"
         "  --clients: 1.." << kMaxClients
      << " (runs one scale instead of the ladder)\n"
         "  --servers: 1.." << kMaxServers
      << " (requires --clients; default clients/125, min 2)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t single_clients = 0;
  std::size_t single_servers = 0;
  core::AdmissionPolicy policy = core::AdmissionPolicy::kWeightedFair;
  Knobs knobs;
  try {
    // Parse as the "fleet_scale" command so the shared per-command flag
    // table rejects unknown options the same way the spectra CLI does.
    std::vector<std::string> tokens = {"fleet_scale"};
    for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
    const cli::Args args = cli::Args::parse(tokens);
    if (const auto bad = cli::unknown_flag("fleet_scale", args)) {
      std::cerr << "fleet_scale: unknown option --" << *bad << "\n";
      return usage(std::cerr);
    }
    if (args.has_flag("detect-concurrency")) {
      // What the pool would actually use for --jobs=0: one worker per
      // hardware thread (floor 1). bench.sh records both numbers.
      const std::size_t hw = exec::ThreadPool::hardware_concurrency();
      exec::ThreadPool pool(scenario::resolve_jobs(0));
      std::cout << "hardware_concurrency " << hw << "\n"
                << "pool_workers " << pool.size() << "\n";
      return 0;
    }
    json_path = args.get("json", "");
    if (args.option("clients")) {
      single_clients = args.get_count("clients", 0, kMaxClients);
    }
    if (args.option("servers")) {
      SPECTRA_REQUIRE(single_clients > 0, "--servers requires --clients");
      single_servers = args.get_count("servers", 0, kMaxServers);
    }
    const std::string pol = args.get("policy", "wfq");
    SPECTRA_REQUIRE(pol == "fifo" || pol == "wfq",
                    "--policy must be fifo or wfq, got " + pol);
    if (pol == "fifo") policy = core::AdmissionPolicy::kFifo;
    const long islands = args.get_int("islands", 0);
    SPECTRA_REQUIRE(islands >= 0 && islands <= kMaxIslands,
                    "--islands must be in [0, " +
                        std::to_string(kMaxIslands) + "], got " +
                        std::to_string(islands));
    knobs.islands = static_cast<std::size_t>(islands);
    knobs.lookahead = args.get_double("lookahead", 0.0);
    SPECTRA_REQUIRE(knobs.lookahead >= 0.0, "--lookahead must be >= 0");
    const std::string wl = args.get("workload", "mixed");
    SPECTRA_REQUIRE(wl == "mixed" || wl == "speech",
                    "--workload must be mixed or speech, got " + wl);
    if (wl == "speech") knobs.workload = FleetWorkload::kSpeech;
    SPECTRA_REQUIRE(args.get_int("jobs", 0) >= 0, "--jobs must be >= 0");
  } catch (const util::ContractError& err) {
    std::cerr << "fleet_scale: " << err.what() << "\n";
    return usage(std::cerr);
  }
  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  std::vector<Scale> scales;
  if (single_clients > 0) {
    const std::size_t servers =
        single_servers > 0 ? single_servers
                           : std::max<std::size_t>(2, single_clients / 125);
    scales.push_back({single_clients, servers});
  } else {
    scales = {{64, 2}, {256, 4}, {1000, 8}, {10'000, 80}, {100'000, 800}};
  }

  util::Table table("fleet scaling (policy=" +
                    std::string(core::to_string(policy)) +
                    ", jobs=" + std::to_string(jobs) + ")");
  table.set_header({"clients", "servers", "isl", "ops", "remote%", "xisl",
                    "rejected", "p50 s", "p99 s", "util", "energy kJ",
                    "jain", "fingerprint"});

  std::vector<FleetReport> reports;
  for (const Scale& scale : scales) {
    const FleetConfig cfg = config_for(scale, policy, knobs);
    const FleetReport r = run_fleet(cfg, jobs, nullptr);
    reports.push_back(r);
    const double remote_pct =
        r.ops_completed > 0
            ? 100.0 * static_cast<double>(r.ops_remote) /
                  static_cast<double>(r.ops_completed)
            : 0.0;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    table.add_row({std::to_string(r.clients), std::to_string(r.servers),
                   std::to_string(r.islands),
                   std::to_string(r.ops_completed),
                   util::Table::num(remote_pct, 1),
                   std::to_string(r.ops_cross_island),
                   std::to_string(r.ops_rejected),
                   util::Table::num(r.latency_p50_s, 3),
                   util::Table::num(r.latency_p99_s, 3),
                   util::Table::num(r.server_utilization_mean, 3),
                   util::Table::num(r.aggregate_energy_j / 1e3, 2),
                   util::Table::num(r.jain_fairness, 4), fp});
  }
  table.render(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"fleet_scale\",\n";
    out << "  \"policy\": \"" << core::to_string(policy) << "\",\n";
    out << "  \"jobs\": " << jobs << ",\n";
    // Memory is process-wide (peak RSS and allocator high-water are
    // monotonic), so bytes_per_client divides by the largest scale this
    // process ran. bench.sh runs one scale per process, which makes the
    // number exact per ladder rung.
    std::size_t max_clients = 0;
    for (const Scale& s : scales) max_clients = std::max(max_clients,
                                                         s.clients);
    const std::uint64_t rss = obs::peak_rss_bytes();
    out << "  \"mem\": {\n";
    out << "    \"memaudit\": " << (obs::memaudit_enabled() ? "true"
                                                            : "false")
        << ",\n";
    out << "    \"peak_rss_bytes\": " << rss << ",\n";
    out << "    \"peak_live_bytes\": " << obs::memaudit_peak_live_bytes()
        << ",\n";
    out << "    \"max_clients\": " << max_clients << ",\n";
    out << "    \"bytes_per_client\": "
        << (max_clients > 0 ? rss / max_clients : 0) << "\n";
    out << "  },\n";
    out << "  \"scales\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      // FleetReport::to_json is a pretty-printed object; indent it into
      // the array.
      std::string body = reports[i].to_json();
      std::string indented = "    ";
      for (char c : body) {
        indented.push_back(c);
        if (c == '\n') indented += "    ";
      }
      while (!indented.empty() &&
             (indented.back() == ' ' || indented.back() == '\n')) {
        indented.pop_back();
      }
      out << indented << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}
