// Figure 5: Latex execution time for the small (14-page) document.
//
// Scenarios: baseline (all caches warm), file-cache (server B cold),
// reintegrate (70 KB top-level input modified on the client), energy
// (reintegrate + battery power + very aggressive lifetime goal).
// Alternatives: local (233 MHz 560X), server A (400 MHz), server B
// (933 MHz), over shared 2 Mb/s wireless.
#include "latex_common.h"

int main(int argc, char** argv) {
  spectra::scenario::BatchRunner batch(
      spectra::bench::jobs_from_args(argc, argv));
  spectra::bench::run_latex_figure(
      batch, "Figure 5: Small document (14 pages) execution time (seconds)",
      "small",
      [](const spectra::scenario::MeasuredRun& r) { return r.time; },
      "time (s)");
  return 0;
}
