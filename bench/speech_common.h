// Shared driver for the speech figures (3: time; 4: energy).
#pragma once

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/experiment.h"

namespace spectra::bench {

// metric: extracts the reported value from a run (time or energy). Trials
// fan out across the batch runner (seeds x alternatives, nested); stats are
// accumulated afterwards in seed order, so the table is identical for any
// --jobs.
inline void run_speech_figure(
    scenario::BatchRunner& batch, const std::string& title,
    const std::function<double(const scenario::MeasuredRun&)>& metric,
    const std::string& unit) {
  using scenario::MeasuredRun;
  using scenario::SpeechExperiment;
  using scenario::SpeechScenario;

  const auto scenarios = {
      SpeechScenario::kBaseline, SpeechScenario::kEnergy,
      SpeechScenario::kNetwork, SpeechScenario::kCpu,
      SpeechScenario::kFileCache};
  const auto alternatives = SpeechExperiment::alternatives();
  const auto seeds = trial_seeds();

  struct Trial {
    std::vector<MeasuredRun> runs;  // one per alternative, in order
    MeasuredRun spectra;
  };

  std::cout << title << "\n\n";
  for (const auto sc : scenarios) {
    const auto trials = batch.map(seeds.size(), [&](std::size_t t) {
      SpeechExperiment::Config cfg;
      cfg.scenario = sc;
      cfg.seed = seeds[t];
      const SpeechExperiment experiment(cfg);
      Trial out;
      out.runs = batch.map(alternatives.size(), [&](std::size_t a) {
        return experiment.measure(alternatives[a]);
      });
      out.spectra = experiment.run_spectra();
      return out;
    });

    std::map<std::string, Aggregate> by_alt;
    Aggregate spectra_agg;
    std::map<std::string, int> chosen_count;
    for (const auto& trial : trials) {
      for (std::size_t a = 0; a < alternatives.size(); ++a) {
        const auto& run = trial.runs[a];
        auto& agg = by_alt[SpeechExperiment::label(alternatives[a])];
        if (run.feasible) {
          agg.stats.add(metric(run));
        } else {
          agg.any_infeasible = true;
        }
      }
      spectra_agg.stats.add(metric(trial.spectra));
      ++chosen_count[SpeechExperiment::label(trial.spectra.choice.alternative)];
    }

    // The alternative Spectra picked most often across trials gets the "S".
    std::string s_label;
    int s_count = 0;
    for (const auto& [label, count] : chosen_count) {
      if (count > s_count) {
        s_label = label;
        s_count = count;
      }
    }

    util::Table table("Scenario: " + name(sc));
    table.set_header({"alternative", unit, ""});
    for (const auto& alt : alternatives) {
      const std::string label = SpeechExperiment::label(alt);
      table.add_row({label, by_alt[label].cell(),
                     label == s_label ? "<-- S (Spectra's choice)" : ""});
    }
    table.add_separator();
    table.add_row({"Spectra (w/ overhead)", spectra_agg.cell(), ""});
    std::cout << table.to_string() << '\n';
  }
}

}  // namespace spectra::bench
