// Figure 3: Speech recognition execution time.
//
// Five scenarios (baseline, energy, network, CPU, file cache); in each, the
// execution time of every (plan, fidelity) alternative, the alternative
// Spectra selects ("S"), and the execution time when Spectra chooses —
// which includes Spectra's decision overhead ("Spectra (w/ overhead)").
// Mean of 5 trials with 90% confidence intervals, as in the paper.
#include "speech_common.h"

int main(int argc, char** argv) {
  spectra::scenario::BatchRunner batch(
      spectra::bench::jobs_from_args(argc, argv));
  spectra::bench::run_speech_figure(
      batch,
      "Figure 3: Speech recognition execution time (seconds)\n"
      "Client: Itsy v2.2 (206 MHz SA-1100, software FP); server: "
      "IBM T20 (700 MHz PIII); serial link.",
      [](const spectra::scenario::MeasuredRun& r) { return r.time; },
      "time (s)");
  return 0;
}
