// Figure 3: Speech recognition execution time.
//
// Five scenarios (baseline, energy, network, CPU, file cache); in each, the
// execution time of every (plan, fidelity) alternative, the alternative
// Spectra selects ("S"), and the execution time when Spectra chooses —
// which includes Spectra's decision overhead ("Spectra (w/ overhead)").
// Mean of 5 trials with 90% confidence intervals, as in the paper.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main() {
  const auto scenarios = {
      SpeechScenario::kBaseline, SpeechScenario::kEnergy,
      SpeechScenario::kNetwork, SpeechScenario::kCpu,
      SpeechScenario::kFileCache};
  const auto alternatives = SpeechExperiment::alternatives();

  std::cout << "Figure 3: Speech recognition execution time (seconds)\n"
            << "Client: Itsy v2.2 (206 MHz SA-1100, software FP); server: "
               "IBM T20 (700 MHz PIII); serial link.\n\n";

  for (const auto scenario : scenarios) {
    std::map<std::string, bench::Aggregate> time_by_alt;
    bench::Aggregate spectra_time;
    std::map<std::string, int> chosen_count;

    for (const auto seed : bench::trial_seeds()) {
      SpeechExperiment::Config cfg;
      cfg.scenario = scenario;
      cfg.seed = seed;
      SpeechExperiment experiment(cfg);
      for (const auto& alt : alternatives) {
        const auto run = experiment.measure(alt);
        auto& agg = time_by_alt[SpeechExperiment::label(alt)];
        if (run.feasible) {
          agg.stats.add(run.time);
        } else {
          agg.any_infeasible = true;
        }
      }
      const auto s = experiment.run_spectra();
      spectra_time.stats.add(s.time);
      ++chosen_count[SpeechExperiment::label(s.choice.alternative)];
    }

    // The alternative Spectra picked most often across trials gets the "S".
    std::string s_label;
    int s_count = 0;
    for (const auto& [label, count] : chosen_count) {
      if (count > s_count) {
        s_label = label;
        s_count = count;
      }
    }

    util::Table table("Scenario: " + name(scenario));
    table.set_header({"alternative", "time (s)", ""});
    for (const auto& alt : alternatives) {
      const std::string label = SpeechExperiment::label(alt);
      table.add_row({label, time_by_alt[label].cell(),
                     label == s_label ? "<-- S (Spectra's choice)" : ""});
    }
    table.add_separator();
    table.add_row({"Spectra (w/ overhead)", spectra_time.cell(), ""});
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
