// Ablation: where the crossovers fall.
//
// The paper's scenarios sample single points of the environment (bandwidth
// halved, one background job). This bench sweeps the environment
// continuously and reports, at each point, the ground-truth best
// alternative and Spectra's choice — showing both where the crossovers sit
// in this calibration and how closely the self-tuned models track them.
//
//   (a) serial-link bandwidth sweep (speech): remote's large audio payload
//       loses to hybrid as the link degrades; everything loses to local
//       when the link is nearly dead.
//   (b) client background-load sweep (speech): hybrid's local front-end
//       work hands the win to remote as the client saturates.
#include <iostream>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

using apps::JanusApp;

struct SweepPoint {
  std::string best;
  double best_time = 0.0;
  std::string spectra;
  double spectra_time = 0.0;
};

SweepPoint sweep_point(scenario::BatchRunner& batch,
                       const std::function<void(World&)>& knob) {
  SpeechExperiment::Config cfg;
  cfg.seed = 1000;
  SpeechExperiment exp(cfg);

  struct AltResult {
    bool feasible = false;
    double utility = 0.0;
    double time = 0.0;
    std::string label;
  };
  const auto alternatives = SpeechExperiment::alternatives();
  // Every alternative trains its own world, so the fan-out is worth it; the
  // best pick is chosen afterwards in alternative order (first strict max),
  // exactly as the sequential loop did.
  const auto measured = batch.map(alternatives.size(), [&](std::size_t i) {
    const auto& alt = alternatives[i];
    AltResult r;
    auto world = exp.trained_world();
    knob(*world);
    world->settle(12.0);
    try {
      const auto usage =
          world->janus().run_forced(world->spectra(), 2.0, alt);
      const double fid = alt.fidelity.at("vocab") >= 1.0 ? 1.0 : 0.5;
      r.feasible = true;
      r.utility = fid / usage.elapsed;
      r.time = usage.elapsed;
      r.label = SpeechExperiment::label(alt);
    } catch (const util::ContractError&) {
      // infeasible at this point of the sweep
    }
    return r;
  });

  SweepPoint out;
  double best_u = -1.0;
  for (const auto& r : measured) {
    if (r.feasible && r.utility > best_u) {
      best_u = r.utility;
      out.best = r.label;
      out.best_time = r.time;
    }
  }
  {
    auto world = exp.trained_world();
    knob(*world);
    world->settle(12.0);
    const auto choice = world->spectra().begin_fidelity_op(
        JanusApp::kOperation, {{"utt_len", 2.0}});
    world->janus().execute(world->spectra(), 2.0);
    const auto usage = world->spectra().end_fidelity_op();
    out.spectra = SpeechExperiment::label(choice.alternative);
    out.spectra_time = usage.elapsed;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: crossover sweeps (speech testbed, 2 s utterance, "
               "utility = fidelity/time)\n\n";

  {
    util::Table table("(a) serial-link bandwidth sweep");
    table.set_header({"bandwidth (KB/s)", "ground-truth best", "best T (s)",
                      "Spectra chose", "Spectra T (s)"});
    const std::vector<double> sweep = {2.0,  4.0,  6.0,  9.0,
                                       11.5, 16.0, 24.0, 40.0};
    const auto points = batch.map(sweep.size(), [&](std::size_t i) {
      const double kbps = sweep[i];
      return sweep_point(batch, [kbps](World& w) {
        w.network().set_link_bandwidth(kClient, kServerT20, kbps * 1000.0);
      });
    });
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = points[i];
      table.add_row({util::Table::num(sweep[i], 1), p.best,
                     util::Table::num(p.best_time, 2), p.spectra,
                     util::Table::num(p.spectra_time, 2)});
    }
    std::cout << table.to_string() << "\n";
  }

  {
    util::Table table("(b) client background-load sweep");
    table.set_header({"competing procs", "ground-truth best", "best T (s)",
                      "Spectra chose", "Spectra T (s)"});
    const std::vector<double> sweep = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
    const auto points = batch.map(sweep.size(), [&](std::size_t i) {
      const double procs = sweep[i];
      return sweep_point(batch, [procs](World& w) {
        w.client_machine().set_background_procs(procs);
      });
    });
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = points[i];
      table.add_row({util::Table::num(sweep[i], 2), p.best,
                     util::Table::num(p.best_time, 2), p.spectra,
                     util::Table::num(p.spectra_time, 2)});
    }
    std::cout << table.to_string() << "\n";
  }

  std::cout << "Spectra's choice should track the ground-truth best column "
               "through each crossover,\npossibly trading a small time loss "
               "for fidelity (utility is fidelity/time).\n";
  return 0;
}
