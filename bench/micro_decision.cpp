// micro_decision: decision hot-path microbenchmark.
//
// Measures the real wall-clock cost of begin_fidelity_op — the snapshot →
// demand prediction → solver search → utility evaluation pipeline — on
// three trained worlds of increasing decision-space size:
//
//   * nullop_1srv — the fig10 overhead testbed with one candidate server
//     (2 plans x 2 fidelity levels); this is the number scripts/check.sh's
//     perf smoke guards against regression.
//   * speech     — the trained Janus world (6 alternatives, 1 server).
//   * pangloss   — the trained Pangloss world (~97 alternatives, 2
//     servers), the space that dominates the fig08/fig09 benches.
//
// Per scenario: decisions/sec, p50/p95/mean decision latency, and the
// per-stage breakdown the client reports (file-cache prediction, choosing
// the alternative, remaining snapshot/bookkeeping time). Means are
// best-of-`reps` to shed scheduler noise, which only ever adds time;
// latency percentiles come from the best rep's samples.
//
// Usage: micro_decision [--json=FILE] [--decisions=N] [--reps=N]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "apps/janus.h"
#include "apps/pangloss.h"
#include "scenario/experiment.h"
#include "scenario/world.h"
#include "util/stats.h"
#include "util/table.h"

using namespace spectra;            // NOLINT
using namespace spectra::scenario;  // NOLINT

namespace {

double wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One measured decision cycle: time begin_fidelity_op, then run the
// operation and close it so the world stays in a valid steady state.
struct DecisionSample {
  double begin_ms = 0.0;
  double cache_ms = 0.0;
  double choose_ms = 0.0;
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;
  std::size_t candidate_servers = 0;
};

struct RepResult {
  std::vector<double> latencies_ms;  // one per decision
  double mean_ms = 0.0;
  double cache_ms = 0.0;   // mean per decision
  double choose_ms = 0.0;  // mean per decision
  double other_ms = 0.0;
  double evaluations = 0.0;  // mean per decision
  double memo_hits = 0.0;
  std::size_t candidate_servers = 0;
};

struct ScenarioResult {
  std::string name;
  std::size_t decisions = 0;
  RepResult best;  // rep with the smallest mean latency
  double decisions_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

template <typename DecideFn>
ScenarioResult run_scenario(const std::string& name, int decisions, int reps,
                            DecideFn&& decide) {
  ScenarioResult out;
  out.name = name;
  out.decisions = static_cast<std::size_t>(decisions);
  // Warm-up: fault in lazily-built state (allocator arenas, model bins).
  for (int i = 0; i < 8; ++i) decide();
  for (int rep = 0; rep < reps; ++rep) {
    RepResult r;
    r.latencies_ms.reserve(decisions);
    double cache = 0, choose = 0, evals = 0, hits = 0;
    for (int i = 0; i < decisions; ++i) {
      const DecisionSample s = decide();
      r.latencies_ms.push_back(s.begin_ms);
      cache += s.cache_ms;
      choose += s.choose_ms;
      evals += static_cast<double>(s.evaluations);
      hits += static_cast<double>(s.memo_hits);
      r.candidate_servers = s.candidate_servers;
    }
    const double n = static_cast<double>(decisions);
    r.mean_ms = std::accumulate(r.latencies_ms.begin(), r.latencies_ms.end(),
                                0.0) /
                n;
    r.cache_ms = cache / n;
    r.choose_ms = choose / n;
    r.other_ms = r.mean_ms - r.cache_ms - r.choose_ms;
    r.evaluations = evals / n;
    r.memo_hits = hits / n;
    if (rep == 0 || r.mean_ms < out.best.mean_ms) out.best = std::move(r);
  }
  out.decisions_per_sec =
      out.best.mean_ms > 0.0 ? 1000.0 / out.best.mean_ms : 0.0;
  out.p50_ms = util::percentile_value(out.best.latencies_ms, 50.0);
  out.p95_ms = util::percentile_value(out.best.latencies_ms, 95.0);
  return out;
}

// ---------------------------------------------------------------- nullop

constexpr const char* kNullOp = "null.op";

void install_null_service(core::SpectraServer& server) {
  server.register_service(kNullOp, [](const rpc::Request&) {
    rpc::Response r;
    r.ok = true;
    r.payload = 64.0;
    return r;
  });
}

std::unique_ptr<World> nullop_world(std::size_t servers) {
  WorldConfig wc;
  wc.testbed = Testbed::kOverhead;
  wc.seed = 1;
  wc.overhead_servers = servers;
  auto world = std::make_unique<World>(wc);
  for (MachineId id : world->server_ids()) {
    install_null_service(world->server(id));
  }
  install_null_service(world->spectra().local_server());
  core::OperationDesc desc;
  desc.name = kNullOp;
  desc.plans = {{"local", false}, {"remote", true}};
  desc.fidelities = {{"level", {0.0, 1.0}}};
  desc.latency_fn = solver::inverse_latency();
  desc.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  world->spectra().register_fidelity(std::move(desc));
  world->settle(6.0);
  // Train past the exploration phase so measured decisions run the full
  // model + solver path.
  for (int i = 0; i < 16; ++i) {
    solver::Alternative local;
    local.plan = 0;
    local.fidelity["level"] = 1.0;
    world->spectra().begin_fidelity_op_forced(kNullOp, {}, "", local);
    rpc::Request req;
    req.op_type = kNullOp;
    req.payload = 64.0;
    world->spectra().do_local_op(kNullOp, req);
    world->spectra().end_fidelity_op();
  }
  return world;
}

DecisionSample sample_from(const core::OperationChoice& choice, double t0,
                           double t1) {
  DecisionSample s;
  s.begin_ms = t1 - t0;
  s.cache_ms = choice.wall_cache_prediction * 1000.0;
  s.choose_ms = choice.wall_choosing * 1000.0;
  s.evaluations = choice.evaluations;
  s.memo_hits = choice.memo_hits;
  s.candidate_servers = choice.candidate_servers;
  return s;
}

// ----------------------------------------------------------------- main

std::string json_scenario(const ScenarioResult& r) {
  std::ostringstream os;
  os.precision(6);
  os << "    {\"name\": \"" << r.name << "\", "
     << "\"decisions\": " << r.decisions << ", "
     << "\"decisions_per_sec\": " << r.decisions_per_sec << ", "
     << "\"mean_ms\": " << r.best.mean_ms << ", "
     << "\"p50_ms\": " << r.p50_ms << ", "
     << "\"p95_ms\": " << r.p95_ms << ", "
     << "\"stages_ms\": {\"cache_prediction\": " << r.best.cache_ms
     << ", \"choosing\": " << r.best.choose_ms
     << ", \"snapshot_other\": " << r.best.other_ms << "}, "
     << "\"solver\": {\"evaluations\": " << r.best.evaluations
     << ", \"memo_hits\": " << r.best.memo_hits
     << ", \"candidate_servers\": " << r.best.candidate_servers << "}}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int decisions = 300;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--decisions=", 0) == 0)
      decisions = std::atoi(arg.c_str() + 12);
    if (arg.rfind("--reps=", 0) == 0) reps = std::atoi(arg.c_str() + 7);
  }
  std::vector<ScenarioResult> results;

  {
    auto world = nullop_world(1);
    results.push_back(run_scenario("nullop_1srv", decisions, reps, [&] {
      const double t0 = wall_ms();
      const auto choice = world->spectra().begin_fidelity_op(kNullOp, {});
      const double t1 = wall_ms();
      rpc::Request req;
      req.op_type = kNullOp;
      req.payload = 64.0;
      world->spectra().do_local_op(kNullOp, req);
      world->spectra().end_fidelity_op();
      return sample_from(choice, t0, t1);
    }));
  }

  {
    SpeechExperiment::Config cfg;
    cfg.seed = 1;
    SpeechExperiment exp(cfg);
    auto world = exp.trained_world();
    results.push_back(run_scenario("speech", decisions, reps, [&] {
      const double t0 = wall_ms();
      const auto choice = world->spectra().begin_fidelity_op(
          apps::JanusApp::kOperation, {{"utt_len", 2.0}});
      const double t1 = wall_ms();
      world->janus().execute(world->spectra(), 2.0);
      world->spectra().end_fidelity_op();
      return sample_from(choice, t0, t1);
    }));
  }

  {
    PanglossExperiment::Config cfg;
    cfg.seed = 1;
    PanglossExperiment exp(cfg);
    auto world = exp.trained_world();
    results.push_back(run_scenario("pangloss", decisions, reps, [&] {
      const double t0 = wall_ms();
      const auto choice = world->spectra().begin_fidelity_op(
          apps::PanglossApp::kOperation, {{"words", 12.0}});
      const double t1 = wall_ms();
      world->pangloss().execute(world->spectra(), 12);
      world->spectra().end_fidelity_op();
      return sample_from(choice, t0, t1);
    }));
  }

  util::Table table("micro_decision: begin_fidelity_op hot path (wall-clock)");
  table.set_header({"scenario", "decisions/s", "mean ms", "p50 ms", "p95 ms",
                    "cache ms", "choose ms", "other ms", "evals", "memo"});
  for (const auto& r : results) {
    table.add_row({r.name, util::Table::num(r.decisions_per_sec, 0),
                   util::Table::num(r.best.mean_ms, 4),
                   util::Table::num(r.p50_ms, 4),
                   util::Table::num(r.p95_ms, 4),
                   util::Table::num(r.best.cache_ms, 4),
                   util::Table::num(r.best.choose_ms, 4),
                   util::Table::num(r.best.other_ms, 4),
                   util::Table::num(r.best.evaluations, 1),
                   util::Table::num(r.best.memo_hits, 1)});
  }
  std::cout << table.to_string();

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"harness\": \"bench/micro_decision\",\n"
        << "  \"decisions\": " << decisions << ",\n  \"reps\": " << reps
        << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << json_scenario(results[i]) << (i + 1 < results.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
