// Recovery bench: what does losing the chosen server mid-operation cost?
//
// The old failure ladder walked a fixed fallback order with no probing: it
// committed the full retry policy (max_attempts x per-attempt timeout) to
// every rung, dead or alive. Health-aware failover (the default since the
// resilience PR) re-runs the solver over surviving candidates and
// pre-flight-pings the winner, so an additional dead server costs one
// failed round trip instead of the whole retry budget.
//
// Two scenarios on the ThinkPad latex testbed, crash fired right after the
// placement decision:
//   one-down  — only the chosen server crashes; the other remote survives.
//               Both policies route to the survivor; this is the parity
//               check (failover must not be slower than the ladder).
//   two-down  — both remote servers crash; local execution is the only way
//               out. The ladder burns the retry budget on each dead rung;
//               failover pings the second corpse and fails fast.
#include <fstream>
#include <iostream>

#include "apps/latex.h"
#include "bench_util.h"
#include "fault/fault_plan.h"
#include "scenario/experiment.h"
#include "scenario/world.h"
#include "util/table.h"

using namespace spectra;            // NOLINT
using namespace spectra::scenario;  // NOLINT

namespace {

using apps::LatexApp;

struct PolicyResult {
  bench::Aggregate recovery;   // elapsed of the interrupted op
  bench::Aggregate follow_up;  // elapsed of the next op after the crash
  int local_fallbacks = 0;     // interrupted ops that collapsed to local
};

struct Trial {
  double recovery_s = 0.0;
  double follow_up_s = 0.0;
  bool fell_back_local = false;
};

Trial run_trial(std::uint64_t seed, bool health_aware, bool crash_both) {
  LatexExperiment::Config cfg;
  cfg.seed = seed;
  if (!health_aware) {
    cfg.spectra_overrides = [](core::SpectraClientConfig& c) {
      c.resolve_on_failover = false;
      c.health.enabled = false;
    };
  }
  auto w = LatexExperiment(cfg).trained_world();
  auto& spectra = w->spectra();

  const auto choice =
      spectra.begin_fidelity_op(LatexApp::kOperation, {}, "small");
  if (!choice.ok || choice.alternative.server < 0) return {};
  fault::FaultPlan plan;
  for (MachineId sid : {kServerA, kServerB}) {
    if (!crash_both && sid != choice.alternative.server) continue;
    fault::FaultEvent crash;
    crash.at = 0.0;
    crash.kind = fault::FaultKind::kServerCrash;
    crash.a = sid;
    crash.duration = 3600.0;  // outlives both operations
    plan.scheduled.push_back(crash);
  }
  w->arm_faults(plan);

  Trial t;
  const double t0 = w->engine().now();
  w->latex().execute(spectra, "small");
  // Degrading adopts the co-located server under the client's own id.
  t.fell_back_local = spectra.current_choice().alternative.server <= kClient;
  spectra.end_fidelity_op();
  t.recovery_s = w->engine().now() - t0;

  const double t1 = w->engine().now();
  spectra.begin_fidelity_op(LatexApp::kOperation, {}, "small");
  w->latex().execute(spectra, "small");
  spectra.end_fidelity_op();
  t.follow_up_s = w->engine().now() - t1;
  return t;
}

PolicyResult run_policy(const std::vector<std::uint64_t>& seeds,
                        BatchRunner& batch, bool health_aware,
                        bool crash_both) {
  const auto trials = batch.map(seeds.size(), [&](std::size_t i) {
    return run_trial(seeds[i], health_aware, crash_both);
  });
  PolicyResult r;
  for (const auto& t : trials) {
    r.recovery.stats.add(t.recovery_s);
    r.follow_up.stats.add(t.follow_up_s);
    if (t.fell_back_local) ++r.local_fallbacks;
  }
  return r;
}

std::string policy_json(const PolicyResult& r) {
  std::ostringstream os;
  os << "{\"recovery_s\": " << r.recovery.stats.mean()
     << ", \"follow_up_s\": " << r.follow_up.stats.mean()
     << ", \"local_fallbacks\": " << r.local_fallbacks << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  const auto seeds = bench::trial_seeds();
  std::cout << "Recovery cost when servers crash mid-operation (ThinkPad "
               "latex, small\ndocument, "
            << seeds.size() << " trials, 90% CI).\n\n";

  struct Scenario {
    const char* name;
    bool crash_both;
  };
  const Scenario scenarios[] = {{"one-down", false}, {"two-down", true}};

  util::Table table;
  table.set_header({"scenario", "policy", "interrupted op (s)",
                    "next op (s)", "local fallbacks"});
  std::string rows_json;
  bool failover_wins = true;
  for (const auto& sc : scenarios) {
    const PolicyResult ladder = run_policy(seeds, batch, false,
                                           sc.crash_both);
    const PolicyResult failover = run_policy(seeds, batch, true,
                                             sc.crash_both);
    table.add_row({sc.name, "legacy ladder", ladder.recovery.cell(),
                   ladder.follow_up.cell(),
                   std::to_string(ladder.local_fallbacks)});
    table.add_row({sc.name, "health-aware failover",
                   failover.recovery.cell(), failover.follow_up.cell(),
                   std::to_string(failover.local_fallbacks)});
    table.add_separator();
    const double lr = ladder.recovery.stats.mean();
    const double fr = failover.recovery.stats.mean();
    std::cout << sc.name << " interrupted-op speedup: "
              << util::Table::num(lr / fr, 2) << "x\n";
    // Parity on one-down, a clear win on two-down; 5% tolerance covers
    // the re-decision overhead failover charges.
    if (fr > lr * 1.05) failover_wins = false;
    if (!rows_json.empty()) rows_json += ",\n";
    rows_json += std::string("    {\"scenario\": \"") + sc.name +
                 "\", \"ladder\": " + policy_json(ladder) +
                 ", \"failover\": " + policy_json(failover) +
                 ", \"recovery_speedup\": " + util::Table::num(lr / fr, 4) +
                 "}";
  }
  std::cout << "\n" << table.to_string() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"trials\": " << seeds.size() << ",\n  \"scenarios\": [\n"
        << rows_json << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  // The whole point of the resilience work: failover must never be slower
  // than the ladder it replaced, and must win when several servers die.
  return failover_wins ? 0 : 1;
}
