// Microbenchmarks (google-benchmark) for the hot paths of a Spectra
// decision: predictor updates and queries, snapshot construction, solver
// search, and the end-to-end begin/end cycle. These bound the per-operation
// overhead that the Fig-10 table reports.
#include <benchmark/benchmark.h>

#include "predict/numeric.h"
#include "predict/operation_model.h"
#include "scenario/experiment.h"
#include "solver/solver.h"
#include "util/rng.h"

using namespace spectra;  // NOLINT

namespace {

predict::FeatureVector make_features(int plan, double len) {
  predict::FeatureVector f;
  f.discrete["plan"] = plan;
  f.discrete["vocab"] = plan % 2;
  f.continuous["len"] = len;
  return f;
}

void BM_PredictorAdd(benchmark::State& state) {
  predict::NumericPredictor p;
  util::Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    p.add(make_features(i % 3, rng.uniform(1.0, 4.0)), rng.uniform(0, 1e9));
    ++i;
  }
}
BENCHMARK(BM_PredictorAdd);

void BM_PredictorQuery(benchmark::State& state) {
  predict::NumericPredictor p;
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    p.add(make_features(i % 3, rng.uniform(1.0, 4.0)), rng.uniform(0, 1e9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict(make_features(1, 2.0)));
  }
}
BENCHMARK(BM_PredictorQuery);

void BM_OperationModelObserve(benchmark::State& state) {
  predict::OperationModel m;
  monitor::OperationUsage u;
  u.local_cycles = 1e8;
  u.remote_cycles = 2e8;
  u.bytes_sent = 4096;
  u.energy = 3.0;
  u.local_file_accesses.push_back({"f1", 1000.0, false, false});
  int i = 0;
  for (auto _ : state) {
    m.observe(make_features(i % 3, 1.0 + (i % 5)), u);
    ++i;
  }
}
BENCHMARK(BM_OperationModelObserve);

solver::AlternativeSpace pangloss_like_space() {
  solver::AlternativeSpace s;
  for (int i = 0; i < 16; ++i) s.plans.push_back({"p", i != 0});
  s.servers = {1, 2};
  s.fidelities = {{"a", {0.0, 1.0}}, {"b", {0.0, 1.0}}, {"c", {0.0, 1.0}}};
  return s;
}

void BM_HeuristicSolve(benchmark::State& state) {
  const auto space = pangloss_like_space();
  const auto eval = [](const solver::Alternative& a) {
    return -std::abs(a.plan - 9.0) + a.fidelity.at("a") -
           0.3 * a.fidelity.at("b");
  };
  for (auto _ : state) {
    solver::HeuristicSolver solver{util::Rng(7)};
    benchmark::DoNotOptimize(solver.solve(space, eval));
  }
}
BENCHMARK(BM_HeuristicSolve);

void BM_ExhaustiveSolve(benchmark::State& state) {
  const auto space = pangloss_like_space();
  const auto eval = [](const solver::Alternative& a) {
    return -std::abs(a.plan - 9.0) + a.fidelity.at("a");
  };
  for (auto _ : state) {
    solver::ExhaustiveSolver solver;
    benchmark::DoNotOptimize(solver.solve(space, eval));
  }
}
BENCHMARK(BM_ExhaustiveSolve);

void BM_SnapshotBuild(benchmark::State& state) {
  scenario::WorldConfig wc;
  wc.testbed = scenario::Testbed::kThinkpad;
  scenario::World world(wc);
  world.warm_all_caches();
  world.settle(6.0);
  const auto candidates = world.spectra().server_db().available_servers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.spectra().monitors().build_snapshot(
        candidates, world.engine().now()));
  }
}
BENCHMARK(BM_SnapshotBuild);

void BM_NullOperationCycle(benchmark::State& state) {
  scenario::WorldConfig wc;
  wc.testbed = scenario::Testbed::kOverhead;
  wc.overhead_servers = static_cast<std::size_t>(state.range(0));
  scenario::World world(wc);
  world.spectra().local_server().register_service(
      "noop", [](const rpc::Request&) {
        rpc::Response r;
        r.ok = true;
        r.payload = 64.0;
        return r;
      });
  core::OperationDesc desc;
  desc.name = "noop";
  desc.plans = {{"local", false}};
  desc.latency_fn = solver::inverse_latency();
  desc.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  world.spectra().register_fidelity(desc);
  rpc::Request req;
  req.op_type = "noop";
  for (auto _ : state) {
    world.spectra().begin_fidelity_op("noop", {});
    world.spectra().do_local_op("noop", req);
    world.spectra().end_fidelity_op();
  }
}
BENCHMARK(BM_NullOperationCycle)->Arg(0)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
