// Scratch diagnostic: predicted vs measured metrics per speech alternative.
#include <iostream>

#include "monitor/battery_monitor.h"
#include "scenario/experiment.h"
#include "solver/estimator.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main(int argc, char** argv) {
  SpeechExperiment::Config cfg;
  cfg.scenario = SpeechScenario::kBaseline;
  if (argc > 1 && std::string(argv[1]) == "energy")
    cfg.scenario = SpeechScenario::kEnergy;
  if (argc > 1 && std::string(argv[1]) == "cpu")
    cfg.scenario = SpeechScenario::kCpu;
  cfg.seed = 1000;
  SpeechExperiment exp(cfg);

  auto world = exp.trained_world();
  auto& spectra = world->spectra();

  // Reproduce the decision inputs.
  auto candidates = spectra.server_db().available_servers();
  auto snapshot =
      spectra.monitors().build_snapshot(candidates, world->engine().now());
  std::cout << "local_cpu_hz=" << snapshot.local_cpu_hz / 1e6 << "MHz"
            << " fetch_rate=" << snapshot.local_fetch_rate / 1024 << "KB/s"
            << " c=" << snapshot.energy_importance << "\n";
  for (auto& [id, sa] : snapshot.servers) {
    std::cout << "server " << id << ": cpu=" << sa.cpu_hz / 1e6
              << "MHz bw=" << sa.bandwidth / 1024
              << "KB/s lat=" << sa.latency
              << " cached=" << sa.cached_files->size()
              << " fetch=" << sa.fetch_rate / 1024 << "KB/s\n";
  }

  solver::AlternativeSpace space;
  space.plans = {{"local", false}, {"hybrid", true}, {"remote", true}};
  space.servers = candidates;
  space.fidelities = {{"vocab", {0.0, 1.0}}};

  solver::ExecutionEstimator estimator;
  solver::EstimatorInputs inputs;
  inputs.snapshot = &snapshot;

  for (const auto& alt : SpeechExperiment::alternatives()) {
    std::map<std::string, double> params{{"utt_len", 2.0}};
    auto demand = spectra.predict_demand(apps::JanusApp::kOperation, params,
                                         "", alt);
    solver::TimeBreakdown tb;
    auto metrics = estimator.estimate(inputs, space, alt, demand, &tb);
    std::cout << SpeechExperiment::label(alt) << ": lc=" << demand.local_cycles / 1e6
              << "M rc=" << demand.remote_cycles / 1e6
              << "M tx=" << demand.bytes_sent / 1024 << "KB rx="
              << demand.bytes_received / 1024 << "KB rpcs=" << demand.rpcs
              << " E=" << demand.energy << "J files=" << demand.files.size();
    if (metrics) {
      std::cout << " | T=" << metrics->time << " (cpu_l=" << tb.local_cpu
                << " cpu_r=" << tb.remote_cpu << " net=" << tb.network
                << " miss=" << tb.cache_miss << " cons=" << tb.consistency
                << ")";
    } else {
      std::cout << " | infeasible";
    }
    std::cout << "\n";
  }
  return 0;
}
