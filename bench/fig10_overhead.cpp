// Figure 10: Spectra overhead.
//
// Cost of a null operation (a service that returns immediately) under 0, 1,
// and 5 candidate servers, decomposed into the paper's rows. Two kinds of
// numbers are reported:
//
//   * real wall-clock milliseconds of this implementation's API calls —
//     absolute values reflect 2026 hardware, but the paper's shape should
//     hold: overhead grows with the number of servers, dominated by
//     choosing the alternative, and file-cache prediction becomes the
//     pathological term when the client cache is full (the paper's
//     5.2 ms -> 359.6 ms blowup caused by Coda's dump-everything
//     interface);
//   * the modeled virtual-time decision cost that simulated experiments
//     charge to the client, calibrated against the paper's measurements.
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "obs/obs.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main(int argc, char** argv) {
  // --jobs is accepted for harness uniformity, but this bench measures real
  // wall-clock phase latencies — concurrent runs would contend for cores
  // and distort every number, so it always executes sequentially.
  (void)bench::jobs_from_args(argc, argv);
  std::vector<OverheadReport> reports;
  for (std::size_t servers : {0u, 1u, 5u}) {
    OverheadExperiment::Config cfg;
    cfg.servers = servers;
    reports.push_back(OverheadExperiment(cfg).run());
  }

  util::Table table(
      "Figure 10: Spectra overhead — null operation (wall-clock ms)");
  table.set_header({"activity", "no servers", "1 server", "5 servers"});
  auto row = [&](const std::string& label, auto getter, int precision = 4) {
    std::vector<std::string> cells{label};
    for (const auto& r : reports) {
      cells.push_back(util::Table::num(getter(r), precision));
    }
    table.add_row(cells);
  };
  row("register_fidelity", [](const auto& r) { return r.register_ms; });
  row("begin_fidelity_op", [](const auto& r) { return r.begin_ms; });
  row("  file cache prediction",
      [](const auto& r) { return r.cache_prediction_ms; });
  row("  choosing alternative", [](const auto& r) { return r.choosing_ms; });
  row("  other activity", [](const auto& r) { return r.begin_other_ms; });
  row("do_local_op", [](const auto& r) { return r.do_local_ms; });
  row("end_fidelity_op", [](const auto& r) { return r.end_ms; });
  table.add_separator();
  row("total", [](const auto& r) { return r.total_ms; });
  table.add_separator();
  row("file cache prediction, full cache",
      [](const auto& r) { return r.cache_prediction_full_ms; });
  row("modeled virtual decision cost",
      [](const auto& r) { return r.virtual_decision_ms; }, 2);
  std::cout << table.to_string();
  std::cout << "\nPaper (233 MHz-era hardware): total 18.4 / 21.4 / 74.0 ms; "
               "choosing 0.4 / 1.0 / 43.4 ms;\nfile cache prediction 5.2 ms "
               "(empty) to 359.6 ms (full cache).\n";

  // Observability overhead: the same 1-server null-op experiment with a
  // live trace sink plus metrics registry attached, against the plain run
  // above. Acceptance: tracing adds < 5% to the per-op wall-clock total.
  OverheadExperiment::Config cfg;
  cfg.servers = 1;
  cfg.measured_runs = 1000;
  // The null op costs ~50 us, so scheduler/frequency noise swamps any
  // single measurement; take the best of three 1000-run means per config
  // (min is robust against noise spikes, which only ever add time).
  obs::Observability obs;
  std::ostringstream sink;
  obs.trace_to(sink);
  const auto one = [&cfg](obs::Observability* o) {
    cfg.obs = o;
    return OverheadExperiment(cfg).run();
  };
  obs::Observability metrics_only;
  (void)one(nullptr);  // warm caches/allocator
  // Interleave configs within each rep so slow drift (frequency scaling)
  // hits all three equally; min-of-reps is robust against noise spikes,
  // which only ever add time.
  OverheadReport off_r, mid_r, on_r;
  for (int rep = 0; rep < 5; ++rep) {
    const OverheadReport o = one(nullptr);
    const OverheadReport m = one(&metrics_only);
    const OverheadReport t = one(&obs);
    if (rep == 0 || o.begin_ms < off_r.begin_ms) off_r = o;
    if (rep == 0 || m.begin_ms < mid_r.begin_ms) mid_r = m;
    if (rep == 0 || t.begin_ms < on_r.begin_ms) on_r = t;
  }
  // Acceptance tracks decision latency — begin_fidelity_op, the phase that
  // snapshots, solves, and (when tracing) writes the decision explain
  // record. end_fidelity_op's record is charged to end, not here.
  const auto pct = [&](const OverheadReport& r) {
    return off_r.begin_ms > 0.0
               ? 100.0 * (r.begin_ms - off_r.begin_ms) / off_r.begin_ms
               : 0.0;
  };
  std::cout << "\nObservability overhead, decision latency (1 server): "
            << util::Table::num(off_r.begin_ms, 4) << " ms off; "
            << util::Table::num(mid_r.begin_ms, 4) << " ms --metrics ("
            << util::Table::num(pct(mid_r), 1) << "%); "
            << util::Table::num(on_r.begin_ms, 4)
            << " ms --trace + --metrics (" << util::Table::num(pct(on_r), 1)
            << "%, acceptance < 5%).\nWhole null op with trace + metrics: "
            << util::Table::num(off_r.total_ms, 4) << " ms -> "
            << util::Table::num(on_r.total_ms, 4) << " ms; "
            << obs.trace()->events() << " trace events, "
            << obs.metrics().size() << " metrics.\n";
  return 0;
}
