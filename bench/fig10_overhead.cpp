// Figure 10: Spectra overhead.
//
// Cost of a null operation (a service that returns immediately) under 0, 1,
// and 5 candidate servers, decomposed into the paper's rows. Two kinds of
// numbers are reported:
//
//   * real wall-clock milliseconds of this implementation's API calls —
//     absolute values reflect 2026 hardware, but the paper's shape should
//     hold: overhead grows with the number of servers, dominated by
//     choosing the alternative, and file-cache prediction becomes the
//     pathological term when the client cache is full (the paper's
//     5.2 ms -> 359.6 ms blowup caused by Coda's dump-everything
//     interface);
//   * the modeled virtual-time decision cost that simulated experiments
//     charge to the client, calibrated against the paper's measurements.
#include <iostream>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main() {
  std::vector<OverheadReport> reports;
  for (std::size_t servers : {0u, 1u, 5u}) {
    OverheadExperiment::Config cfg;
    cfg.servers = servers;
    reports.push_back(OverheadExperiment(cfg).run());
  }

  util::Table table(
      "Figure 10: Spectra overhead — null operation (wall-clock ms)");
  table.set_header({"activity", "no servers", "1 server", "5 servers"});
  auto row = [&](const std::string& label, auto getter, int precision = 4) {
    std::vector<std::string> cells{label};
    for (const auto& r : reports) {
      cells.push_back(util::Table::num(getter(r), precision));
    }
    table.add_row(cells);
  };
  row("register_fidelity", [](const auto& r) { return r.register_ms; });
  row("begin_fidelity_op", [](const auto& r) { return r.begin_ms; });
  row("  file cache prediction",
      [](const auto& r) { return r.cache_prediction_ms; });
  row("  choosing alternative", [](const auto& r) { return r.choosing_ms; });
  row("  other activity", [](const auto& r) { return r.begin_other_ms; });
  row("do_local_op", [](const auto& r) { return r.do_local_ms; });
  row("end_fidelity_op", [](const auto& r) { return r.end_ms; });
  table.add_separator();
  row("total", [](const auto& r) { return r.total_ms; });
  table.add_separator();
  row("file cache prediction, full cache",
      [](const auto& r) { return r.cache_prediction_full_ms; });
  row("modeled virtual decision cost",
      [](const auto& r) { return r.virtual_decision_ms; }, 2);
  std::cout << table.to_string();
  std::cout << "\nPaper (233 MHz-era hardware): total 18.4 / 21.4 / 74.0 ms; "
               "choosing 0.4 / 1.0 / 43.4 ms;\nfile cache prediction 5.2 ms "
               "(empty) to 359.6 ms (full cache).\n";
  return 0;
}
