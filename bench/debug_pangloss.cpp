// Scratch diagnostic: Pangloss choice quality for one scenario/sentence.
#include <algorithm>
#include <iostream>
#include <vector>

#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main(int argc, char** argv) {
  PanglossExperiment::Config cfg;
  cfg.seed = 1000;
  cfg.test_words = argc > 1 ? std::atoi(argv[1]) : 10;
  if (argc > 2 && std::string(argv[2]) == "fc")
    cfg.scenario = PanglossScenario::kFileCache;
  if (argc > 2 && std::string(argv[2]) == "cpu")
    cfg.scenario = PanglossScenario::kCpu;
  PanglossExperiment exp(cfg);

  const auto alts = PanglossExperiment::alternatives();
  std::cout << alts.size() << " distinct alternatives\n";

  struct Row {
    std::string label;
    double time;
    double utility;
  };
  std::vector<Row> rows;
  std::vector<double> utilities;
  for (const auto& alt : alts) {
    const auto run = exp.measure(alt);
    const double u = PanglossExperiment::achieved_utility(run, alt);
    rows.push_back({PanglossExperiment::label(alt),
                    run.feasible ? run.time : -1.0, u});
    utilities.push_back(u);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.utility > b.utility; });
  std::cout << "top 8 alternatives by achieved utility:\n";
  for (std::size_t i = 0; i < 8 && i < rows.size(); ++i) {
    std::cout << "  " << rows[i].label << "  T=" << rows[i].time
              << "  U=" << rows[i].utility << "\n";
  }

  // Predicted metrics for interesting alternatives, from a trained world.
  {
    auto world = exp.trained_world();
    auto& spectra = world->spectra();
    auto candidates = spectra.server_db().available_servers();
    auto snapshot = spectra.monitors().build_snapshot(candidates,
                                                      world->engine().now());
    solver::AlternativeSpace space;
    for (int m = 0; m < 16; ++m) space.plans.push_back({"p", m != 0});
    space.servers = candidates;
    solver::ExecutionEstimator estimator;
    solver::EstimatorInputs inputs;
    inputs.snapshot = &snapshot;
    std::map<std::string, double> params{
        {"words", static_cast<double>(cfg.test_words)}};
    for (const auto& alt : alts) {
      const std::string label = PanglossExperiment::label(alt);
      if (label != "ebmt@B+gloss@B+dict@B+lm@B" &&
          label != "ebmt@B+gloss@L+dict@B+lm@B" &&
          label != "ebmt@B+gloss@B+dict@L+lm@B")
        continue;
      auto demand = spectra.predict_demand(apps::PanglossApp::kOperation,
                                           params, "", alt);
      solver::TimeBreakdown tb;
      auto metrics = estimator.estimate(inputs, space, alt, demand, &tb);
      std::cout << "pred " << label << ": lc=" << demand.local_cycles / 1e6
                << "M rc=" << demand.remote_cycles / 1e6
                << "M tx=" << demand.bytes_sent / 1024
                << "KB rpcs=" << demand.rpcs
                << " files=" << demand.files.size();
      if (metrics) {
        std::cout << " T=" << metrics->time << " (l=" << tb.local_cpu
                  << " r=" << tb.remote_cpu << " n=" << tb.network
                  << " m=" << tb.cache_miss << ")";
      } else {
        std::cout << " infeasible";
      }
      std::cout << "\n";
    }
  }

  const auto s = exp.run_spectra();
  const double su =
      PanglossExperiment::achieved_utility(s, s.choice.alternative);
  std::cout << "Spectra chose: "
            << PanglossExperiment::label(s.choice.alternative)
            << "  T=" << s.time << "  U=" << su
            << "  percentile=" << util::percentile_rank(utilities, su)
            << "  rel=" << (su / rows.front().utility)
            << "  evals=" << s.choice.evaluations << "\n";
  return 0;
}
