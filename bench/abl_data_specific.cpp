// Ablation: data-specific models (§3.4).
//
// "The input document to the Latex document preparation system will
// significantly affect resource usage: a 100 page document consumes more
// CPU cycles and battery energy than a 2 page document." Spectra keeps an
// LRU of per-data-object models keyed by the document name the front-end
// passes. This ablation hides the document tag, collapsing both documents
// into one model, and reports the resulting CPU-demand prediction error.
#include <iostream>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

void run(scenario::BatchRunner& batch, bool strip_tag) {
  util::Table table(strip_tag ? "WITHOUT data-specific models (ablated)"
                              : "WITH data-specific models (Spectra default)");
  table.set_header({"document", "predicted cycles (M)", "actual cycles (M)",
                    "abs error (%)"});
  util::OnlineStats errors;

  struct DocResult {
    double predicted = 0.0;
    double actual = 0.0;
    double err = 0.0;
  };
  const std::vector<std::string> docs = {"small", "large"};
  const auto results = batch.map(docs.size(), [&](std::size_t i) {
    const std::string& doc = docs[i];
    LatexExperiment::Config cfg;
    cfg.seed = 1000;
    cfg.doc = doc;
    LatexExperiment exp(cfg);
    auto world = exp.trained_world();

    const auto alt = apps::LatexApp::alternative(
        apps::LatexApp::kPlanRemote, kServerB);
    const auto demand = world->spectra().predict_demand(
        apps::LatexApp::kOperation, {}, strip_tag ? "" : doc, alt);
    const auto actual = exp.measure(alt);
    DocResult r;
    r.predicted = demand.remote_cycles;
    r.actual = actual.usage.remote_cycles;
    r.err = 100.0 * std::abs(r.predicted - r.actual) / r.actual;
    return r;
  });
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto& r = results[i];
    errors.add(r.err);
    table.add_row({docs[i], util::Table::num(r.predicted / 1e6, 0),
                   util::Table::num(r.actual / 1e6, 0),
                   util::Table::num(r.err, 1)});
  }
  std::cout << table.to_string();
  std::cout << "mean absolute error: " << util::Table::num(errors.mean(), 1)
            << "%\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: data-specific (per-document) demand models\n\n";
  run(batch, /*strip_tag=*/false);
  run(batch, /*strip_tag=*/true);
  std::cout << "Without the document tag both documents share one model "
               "whose mean sits between\na 14-page and a 123-page "
               "compilation — wrong for both.\n";
  return 0;
}
