// Ablation: Spectra vs related-work policies (§5).
//
// Compares achieved utility (fidelity/latency, plus energy where the
// scenario is battery powered) across the speech scenarios for:
//   * Spectra (full self-tuning system),
//   * RPF-style history policy (Rudenko et al.): local-vs-remote from past
//     time+energy only, remote only when BOTH improve, no resource
//     monitoring,
//   * static local and static remote,
//   * the zero-overhead oracle.
#include <cmath>
#include <iostream>

#include "baseline/policies.h"
#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

namespace {

using apps::JanusApp;

double utility_of(const MeasuredRun& run, const solver::Alternative& alt,
                  double c) {
  if (!run.feasible) return 0.0;
  const double fid = alt.fidelity.at("vocab") >= 1.0 ? 1.0 : 0.5;
  double u = fid / run.time;
  if (c > 0.0) u *= std::pow(1.0 / std::max(run.energy, 1e-6), c);
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::BatchRunner batch(bench::jobs_from_args(argc, argv));
  std::cout << "Ablation: Spectra vs RPF-style history policy vs static "
               "placement (speech testbed)\n"
            << "cells: achieved utility relative to the zero-overhead "
               "oracle (1.00 = optimal; 0 = infeasible)\n\n";

  util::Table table;
  table.set_header(
      {"scenario", "Spectra", "RPF-style", "always-local", "always-remote"});

  const std::vector<SpeechScenario> scenarios = {
      SpeechScenario::kBaseline, SpeechScenario::kEnergy,
      SpeechScenario::kNetwork, SpeechScenario::kCpu,
      SpeechScenario::kFileCache};
  // One self-contained task per scenario; rows are added in scenario order
  // afterwards, so the table is identical for any --jobs.
  const auto rows = batch.map(scenarios.size(), [&](std::size_t i) {
    const auto sc = scenarios[i];
    SpeechExperiment::Config cfg;
    cfg.scenario = sc;
    cfg.seed = 1000;
    SpeechExperiment exp(cfg);
    // Use a soft energy weight in the battery scenario so energy matters
    // to the scoreboard the way it matters to the user.
    const double c = sc == SpeechScenario::kEnergy ? 0.5 : 0.0;

    // Ground-truth measurement of every alternative.
    std::map<std::string, MeasuredRun> runs;
    baseline::OraclePolicy oracle(
        [&](const solver::Alternative& alt, const baseline::Outcome& o) {
          MeasuredRun r;
          r.feasible = o.feasible;
          r.time = o.time;
          r.energy = o.energy;
          return utility_of(r, alt, c);
        });
    for (const auto& alt : SpeechExperiment::alternatives()) {
      const auto run = exp.measure(alt);
      runs[SpeechExperiment::label(alt)] = run;
      oracle.add_measurement(
          alt, baseline::Outcome{run.time, run.energy, run.feasible});
    }
    const double best = oracle.best_utility();

    // Spectra.
    const auto s = exp.run_spectra();
    const double spectra_u =
        utility_of(s, s.choice.alternative, c) / best;

    // RPF: arbitrates local-full vs remote-full from the same history it
    // would have accumulated (the training runs), never monitoring
    // resources — so it evaluates with *baseline-era* statistics.
    const auto local_alt = JanusApp::alternative(JanusApp::kPlanLocal, 1.0);
    const auto remote_alt =
        JanusApp::alternative(JanusApp::kPlanRemote, 1.0, kServerT20);
    baseline::RpfPolicy rpf(local_alt, remote_alt);
    {
      SpeechExperiment::Config base_cfg = cfg;
      base_cfg.scenario = SpeechScenario::kBaseline;
      SpeechExperiment base_exp(base_cfg);
      for (int i = 0; i < 3; ++i) {
        const auto l = base_exp.measure(local_alt);
        const auto r = base_exp.measure(remote_alt);
        rpf.observe(false, {l.time, l.energy, l.feasible});
        rpf.observe(true, {r.time, r.energy, r.feasible});
      }
    }
    const auto rpf_choice = rpf.choose();
    const auto rpf_run = runs.at(SpeechExperiment::label(rpf_choice));
    const double rpf_u = utility_of(rpf_run, rpf_choice, c) / best;

    const auto l_run = runs.at(SpeechExperiment::label(local_alt));
    const double local_u = utility_of(l_run, local_alt, c) / best;
    const auto r_run = runs.at(SpeechExperiment::label(remote_alt));
    const double remote_u = utility_of(r_run, remote_alt, c) / best;

    return std::vector<std::string>{
        name(sc), util::Table::num(spectra_u, 2), util::Table::num(rpf_u, 2),
        util::Table::num(local_u, 2), util::Table::num(remote_u, 2)};
  });
  for (const auto& row : rows) table.add_row(row);
  std::cout << table.to_string();
  std::cout << "\nRPF tracks Spectra only while the environment matches its "
               "history; it cannot react to\nresource changes it has not "
               "yet suffered through, never trades energy against time,\n"
               "and cannot adjust fidelity.\n";
  return 0;
}
