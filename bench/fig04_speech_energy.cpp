// Figure 4: Speech recognition energy usage (client Joules per utterance).
//
// Same scenarios and alternatives as Figure 3; the metric is the energy
// drawn from the Itsy's battery as reported by its SmartBattery chip. The
// paper's shape: local execution costs an order of magnitude more energy
// than the distributed plans (software-FP search on the SA-1100), and
// remote costs less than hybrid because hybrid keeps the front-end/prescan
// computation on the client.
#include "speech_common.h"

int main(int argc, char** argv) {
  spectra::scenario::BatchRunner batch(
      spectra::bench::jobs_from_args(argc, argv));
  spectra::bench::run_speech_figure(
      batch, "Figure 4: Speech recognition energy usage (Joules)",
      [](const spectra::scenario::MeasuredRun& r) { return r.energy; },
      "energy (J)");
  return 0;
}
