// Figure 4: Speech recognition energy usage (client Joules per utterance).
//
// Same scenarios and alternatives as Figure 3; the metric is the energy
// drawn from the Itsy's battery as reported by its SmartBattery chip. The
// paper's shape: local execution costs an order of magnitude more energy
// than the distributed plans (software-FP search on the SA-1100), and
// remote costs less than hybrid because hybrid keeps the front-end/prescan
// computation on the client.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "scenario/experiment.h"

using namespace spectra;           // NOLINT
using namespace spectra::scenario; // NOLINT

int main() {
  const auto scenarios = {
      SpeechScenario::kBaseline, SpeechScenario::kEnergy,
      SpeechScenario::kNetwork, SpeechScenario::kCpu,
      SpeechScenario::kFileCache};
  const auto alternatives = SpeechExperiment::alternatives();

  std::cout << "Figure 4: Speech recognition energy usage (Joules)\n\n";

  for (const auto scenario : scenarios) {
    std::map<std::string, bench::Aggregate> energy_by_alt;
    bench::Aggregate spectra_energy;
    std::map<std::string, int> chosen_count;

    for (const auto seed : bench::trial_seeds()) {
      SpeechExperiment::Config cfg;
      cfg.scenario = scenario;
      cfg.seed = seed;
      SpeechExperiment experiment(cfg);
      for (const auto& alt : alternatives) {
        const auto run = experiment.measure(alt);
        auto& agg = energy_by_alt[SpeechExperiment::label(alt)];
        if (run.feasible) {
          agg.stats.add(run.energy);
        } else {
          agg.any_infeasible = true;
        }
      }
      const auto s = experiment.run_spectra();
      spectra_energy.stats.add(s.energy);
      ++chosen_count[SpeechExperiment::label(s.choice.alternative)];
    }

    std::string s_label;
    int s_count = 0;
    for (const auto& [label, count] : chosen_count) {
      if (count > s_count) {
        s_label = label;
        s_count = count;
      }
    }

    util::Table table("Scenario: " + name(scenario));
    table.set_header({"alternative", "energy (J)", ""});
    for (const auto& alt : alternatives) {
      const std::string label = SpeechExperiment::label(alt);
      table.add_row({label, energy_by_alt[label].cell(),
                     label == s_label ? "<-- S (Spectra's choice)" : ""});
    }
    table.add_separator();
    table.add_row({"Spectra (w/ overhead)", spectra_energy.cell(), ""});
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
