#!/usr/bin/env bash
# Perf harness for the parallel batch runner: times every figure bench
# sequentially (--jobs=1), in parallel (--jobs=N), and with trained-world
# reuse disabled (SPECTRA_REUSE=0, the retrain-per-run baseline), verifies
# that parallel output is byte-identical to sequential, and writes the
# machine-readable BENCH_parallel.json. A resilience pass then runs the
# chaos soak and the fault-recovery bench into BENCH_chaos.json, and a
# fleet-scale pass runs the fleet_scale ladder (shared-server admission,
# 64-100k clients; scales past 256 auto-shard into islands) into
# BENCH_fleet.json, failing if --jobs changes a byte of the deterministic
# output; a memory ladder then re-runs each scale in its own process to
# record per-scale peak RSS and bytes-per-client against the pre-diet
# baselines. An island scaling-curve stage sweeps the sharded fleet across
# --jobs=1/2/4 and appends events/sec-vs-workers to BENCH_parallel.json.
#
# Usage: scripts/bench.sh [build-dir] [jobs]
#   build-dir  default: build
#   jobs       default: one worker per hardware thread (nproc)
#
# SPECTRA_TRIALS bounds per-figure trials (default 5, as in the paper).
# parallel_speedup is bounded by the machine's core count — on a 1-core
# host it stays ~1.0 and reuse_speedup is the meaningful number.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="${2:-$(nproc)}"
TRIALS="${SPECTRA_TRIALS:-5}"
OUT="BENCH_parallel.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Concurrency as the thread pool actually sees it (std::thread::
# hardware_concurrency via fleet_scale --detect-concurrency), not nproc —
# container CPU limits can make the two disagree, and recording the wrong
# one turns ~1.0x "speedups" into silent mysteries.
HW_DETECTED=$("$BUILD/bench/fleet_scale" --detect-concurrency \
              | awk '/hardware_concurrency/ { print $2 }')
POOL_WORKERS=$("$BUILD/bench/fleet_scale" --detect-concurrency \
               | awk '/pool_workers/ { print $2 }')
if [ "$HW_DETECTED" -le 1 ]; then
  echo "WARNING: only $HW_DETECTED hardware thread detected -- parallel" \
       "speedups below are bounded at ~1.0x and are NOT regressions" >&2
fi

FIGS=(fig03_speech_time fig04_speech_energy fig05_latex_small
      fig06_latex_large fig07_latex_energy fig08_pangloss_accuracy
      fig09_pangloss_utility)

export SPECTRA_TRIALS="$TRIALS"

wall() {  # wall <stdout-file> <cmd...> -> prints elapsed seconds
  local out="$1"; shift
  local t0 t1
  t0=$(date +%s.%N)
  "$@" > "$out"
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}

ratio() {  # ratio <num> <den>
  awk -v n="$1" -v d="$2" 'BEGIN { printf "%.2f", (d > 0 ? n / d : 0) }'
}

rows=""
for fig in "${FIGS[@]}"; do
  bin="$BUILD/bench/$fig"
  [ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 1; }

  seq_s=$(wall "$TMP/seq.txt" "$bin" --jobs=1)
  par_s=$(wall "$TMP/par.txt" "$bin" --jobs="$JOBS")
  retrain_s=$(SPECTRA_REUSE=0 wall "$TMP/retrain.txt" "$bin" --jobs=1)

  if cmp -s "$TMP/seq.txt" "$TMP/par.txt"; then
    identical=true
  else
    identical=false
  fi
  par_speedup=$(ratio "$seq_s" "$par_s")
  reuse_speedup=$(ratio "$retrain_s" "$seq_s")

  # On a single hardware thread the seq-vs-par comparison measures pool
  # overhead, not parallelism: annotate it per figure so nobody reads the
  # ~1.0x numbers as regressions (the JSON carries the same flag).
  if [ "$HW_DETECTED" -le 1 ]; then
    par_note=" [1 hw thread: speedup not meaningful]"
    bounded=true
  else
    par_note=""
    bounded=false
  fi
  echo "$fig: seq ${seq_s}s, jobs=$JOBS ${par_s}s (${par_speedup}x)${par_note}," \
       "retrain ${retrain_s}s (reuse ${reuse_speedup}x), identical=$identical"

  row=$(printf '    {"name": "%s", "seq_s": %s, "par_s": %s, "parallel_speedup": %s, "speedup_bounded_by_host": %s, "hardware_concurrency_detected": %s, "retrain_s": %s, "reuse_speedup": %s, "identical": %s}' \
        "$fig" "$seq_s" "$par_s" "$par_speedup" "$bounded" "$HW_DETECTED" \
        "$retrain_s" "$reuse_speedup" "$identical")
  rows="${rows:+$rows,$'\n'}$row"
done

cat > "$OUT" <<EOF
{
  "harness": "scripts/bench.sh",
  "build_dir": "$BUILD",
  "jobs": $JOBS,
  "trials": $TRIALS,
  "hardware_concurrency_detected": $HW_DETECTED,
  "pool_workers_at_jobs0": $POOL_WORKERS,
  "single_core_host": $([ "$HW_DETECTED" -le 1 ] && echo true || echo false),
  "figures": [
$rows
  ]
}
EOF
echo "wrote $OUT"

# Island scaling curve: the 1000-client sharded fleet (auto = 4 islands)
# at --jobs=1/2/4, plus the heavier speech workload at the same shard
# count — events/sec (decisions + completions per wall second) vs worker
# count. Every sweep point must print the same deterministic table body;
# the curve is appended to BENCH_parallel.json as "scaling_curve" and
# scripts/check.sh gates the --jobs=1 point against island_floor. On a
# 1-core host the jobs>1 points measure barrier overhead, not scaling —
# single_core_host in the JSON flags that.
SCALE_JOBS=(1 2 4)
scaling_rows=""
for j in "${SCALE_JOBS[@]}"; do
  "$BUILD/bench/fleet_scale" --clients=1000 --jobs="$j" \
      --json="$TMP/scale_$j.json" > "$TMP/scale_$j.txt"
  if [ "$j" != "1" ] && ! cmp -s <(tail -n +2 "$TMP/scale_1.txt") \
                               <(tail -n +2 "$TMP/scale_$j.txt"); then
    echo "ERROR: island fleet output differs between --jobs=1 and --jobs=$j" >&2
    diff <(tail -n +2 "$TMP/scale_1.txt") <(tail -n +2 "$TMP/scale_$j.txt") >&2 || true
    exit 1
  fi
done
"$BUILD/bench/fleet_scale" --clients=1000 --workload=speech --jobs="$JOBS" \
    --json="$TMP/scale_speech.json" > "$TMP/scale_speech.txt"
python3 - "$TMP" "$OUT" "${SCALE_JOBS[@]}" <<PYEOF
import json, sys
tmp, out_path, jobs = sys.argv[1], sys.argv[2], sys.argv[3:]
points = []
for j in jobs:
    s = json.load(open(f'{tmp}/scale_{j}.json'))['scales'][0]
    points.append({'jobs': int(j), 'islands': s['islands'],
                   'clients': s['clients'],
                   'events_per_sec': s['wall']['events_per_sec'],
                   'fingerprint': s['fingerprint']})
assert len({p['fingerprint'] for p in points}) == 1, 'jobs changed outcomes'
base = points[0]['events_per_sec']
for p in points:
    p['speedup_vs_jobs1'] = round(p['events_per_sec'] / base, 2) if base else 0
speech = json.load(open(f'{tmp}/scale_speech.json'))['scales'][0]
doc = json.load(open(out_path))
doc['scaling_curve'] = {
    'bench': 'fleet_scale --clients=1000 (islands auto = 4)',
    'metric': 'events_per_sec (decisions + op completions per wall second)',
    'single_core_host': doc['single_core_host'],
    'points': points,
    'speech_workload': {'jobs': $JOBS, 'islands': speech['islands'],
                        'events_per_sec': speech['wall']['events_per_sec'],
                        'fingerprint': speech['fingerprint']},
}
json.dump(doc, open(out_path, 'w'), indent=2)
curve = ', '.join(f"jobs={p['jobs']} {p['events_per_sec']:.0f} ev/s "
                  f"({p['speedup_vs_jobs1']}x)" for p in points)
note = ' [1 hw thread: curve is overhead, not scaling]' \
    if doc['single_core_host'] else ''
print(f'scaling curve: {curve}{note}')
print('updated', out_path, 'with scaling_curve')
PYEOF

# Decision hot-path numbers: the micro_decision bench times begin/end
# fidelity-op round trips (no simulated execution between them) across three
# scenarios and reports decisions/sec, latency percentiles, and the
# per-stage wall breakdown. The result is joined against the pre-overhaul
# numbers recorded in scripts/perf_baseline.json to get a speedup per
# scenario, and written to BENCH_decision.json.
DECISION_OUT="BENCH_decision.json"
"$BUILD/bench/micro_decision" --json="$TMP/decision.json" > "$TMP/decision.txt"
cat "$TMP/decision.txt"
python3 - "$TMP/decision.json" "$DECISION_OUT" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open('scripts/perf_baseline.json'))
seed = {s['name']: s for s in base['seed_scenarios']}
for s in cur['scenarios']:
    ref = seed.get(s['name'])
    if ref:
        s['seed_decisions_per_sec'] = ref['decisions_per_sec']
        s['speedup'] = round(s['decisions_per_sec'] / ref['decisions_per_sec'], 2)
cur['harness'] = 'scripts/bench.sh'
cur['baseline'] = 'scripts/perf_baseline.json (seed_scenarios)'
json.dump(cur, open(sys.argv[2], 'w'), indent=2)
print('wrote', sys.argv[2], '--',
      ', '.join(f"{s['name']} {s['speedup']}x" for s in cur['scenarios']
                if 'speedup' in s))
PYEOF

# Resilience numbers: a seeded chaos soak across all three applications
# (invariant violations or replay divergence fail the run) and the
# mid-operation recovery bench (ladder vs health-aware failover).
CHAOS_OUT="BENCH_chaos.json"
"$BUILD/src/cli/spectra" chaos --app=all --plans=10 --jobs="$JOBS" \
    --json="$TMP/soak.json" > "$TMP/soak.txt"
cat "$TMP/soak.txt"
"$BUILD/bench/fault_recovery" --jobs="$JOBS" --json="$TMP/recovery.json" \
    > "$TMP/recovery.txt" 2>/dev/null
grep -E "speedup" "$TMP/recovery.txt"

{
  printf '{\n  "harness": "scripts/bench.sh",\n  "jobs": %s,\n  "soak":\n' "$JOBS"
  cat "$TMP/soak.json"
  printf ',\n  "recovery":\n'
  cat "$TMP/recovery.json"
  printf '}\n'
} > "$CHAOS_OUT"
echo "wrote $CHAOS_OUT"

# Fleet-scale numbers: the fleet_scale ladder (64/256/1000/10k/100k
# clients against shared admission-controlled server pools) with per-scale
# p50/p99 latency, server utilization, aggregate energy, Jain's fairness,
# and wall-clock decision throughput. The deterministic table body must be
# byte-identical between --jobs=1 and --jobs=N; the run fails loudly if it
# is not. A memory ladder then re-runs each scale in its own process (peak
# RSS is process-global and monotonic, so per-scale numbers need per-scale
# processes) and records peak RSS, allocator high-water, and
# bytes-per-client against the pre-diet seed baselines.
FLEET_OUT="BENCH_fleet.json"
"$BUILD/bench/fleet_scale" --jobs=1 --json="$TMP/fleet_seq.json" \
    > "$TMP/fleet_seq.txt"
"$BUILD/bench/fleet_scale" --jobs="$JOBS" --json="$TMP/fleet_par.json" \
    > "$TMP/fleet_par.txt"
# First line carries the jobs label by design; everything below it is
# deterministic output.
if cmp -s <(tail -n +2 "$TMP/fleet_seq.txt") <(tail -n +2 "$TMP/fleet_par.txt"); then
  fleet_identical=true
else
  fleet_identical=false
  echo "ERROR: fleet output differs between --jobs=1 and --jobs=$JOBS" >&2
  diff <(tail -n +2 "$TMP/fleet_seq.txt") <(tail -n +2 "$TMP/fleet_par.txt") >&2 || true
  exit 1
fi
cat "$TMP/fleet_par.txt"
MEM_SCALES=(64 256 1000 10000 100000)
for n in "${MEM_SCALES[@]}"; do
  "$BUILD/bench/fleet_scale" --clients="$n" --jobs="$JOBS" \
      --json="$TMP/fleet_mem_$n.json" > /dev/null
done
python3 - "$TMP" "$FLEET_OUT" "${MEM_SCALES[@]}" <<PYEOF
import json, sys
tmp, out_path, scales = sys.argv[1], sys.argv[2], sys.argv[3:]
seq = json.load(open(f'{tmp}/fleet_seq.json'))
par = json.load(open(f'{tmp}/fleet_par.json'))
# Pre-diet seed baselines: peak RSS of the single-scale run before the
# memory-lean client-state work (scattered per-client heap objects, dense
# per-tenant admission arrays), measured on the reference host. Only rungs
# where the working set dwarfs the ~5 MB process baseline are listed —
# smaller rungs would compare fixed overhead, not per-client state.
PRE_DIET_RSS_KB = {10000: 23084, 100000: 809076}
mem = []
for n in scales:
    doc = json.load(open(f'{tmp}/fleet_mem_{n}.json'))
    m, n = doc['mem'], int(n)
    row = {'clients': n,
           'peak_rss_bytes': m['peak_rss_bytes'],
           'peak_live_bytes': m['peak_live_bytes'],
           'bytes_per_client': m['bytes_per_client'],
           'events_per_sec': doc['scales'][0]['wall']['events_per_sec']}
    if n in PRE_DIET_RSS_KB:
        pre = PRE_DIET_RSS_KB[n] * 1024
        row['pre_diet_peak_rss_bytes'] = pre
        row['pre_diet_bytes_per_client'] = pre // n
        row['rss_reduction'] = round(pre / m['peak_rss_bytes'], 2)
    mem.append(row)
out = {
    'harness': 'scripts/bench.sh',
    'jobs': $JOBS,
    'hardware_concurrency_detected': $HW_DETECTED,
    'single_core_host': $([ "$HW_DETECTED" -le 1 ] && echo True || echo False),
    'jobs_identical': True,  # the cmp gate above exits 1 otherwise
    'scales': par['scales'],
    'seq_wall': [s['wall'] for s in seq['scales']],
    'mem': {
        'note': 'one process per scale; peak_rss_bytes is the OS high-water '
                '(getrusage), peak_live_bytes the tracking-allocator '
                'high-water, pre_diet_* the seed baselines recorded before '
                'the memory-lean client-state work',
        'scales': mem,
    },
}
json.dump(out, open(out_path, 'w'), indent=2)
for row in mem:
    red = (f", {row['rss_reduction']}x smaller than pre-diet"
           if 'rss_reduction' in row else '')
    print(f"  mem {row['clients']}: peak RSS "
          f"{row['peak_rss_bytes'] / 1048576:.1f} MiB "
          f"({row['bytes_per_client']} B/client){red}")
print('wrote', out_path)
PYEOF

# Daemon numbers: a loopback serve daemon under `spectra loadgen` — 64
# concurrent sessions of begin/end round trips through the socket loop
# and the decision path, followed by a chaos pass (self-healing clients
# mangling their own frames) against the same daemon. Requests/sec and
# p50/p99 latency are wall-clock (they measure the daemon), so they live
# here and never in traces or goldens. scripts/check.sh gates
# requests_per_sec against serve_floor in scripts/perf_baseline.json.
# The daemon's shed/timeout/drop/recovery counters are folded into
# BENCH_serve.json alongside the client-side fault/reconnect/resume
# numbers, so survivability regressions show up in the bench record.
SERVE_OUT="BENCH_serve.json"
"$BUILD/src/cli/spectra" serve --port=0 \
    --stats-json="$TMP/serve_stats.json" > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$TMP/serve.log" 2>/dev/null && break
  sleep 0.1
done
SERVE_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$TMP/serve.log")
[ -n "$SERVE_PORT" ] || { echo "serve daemon failed to start" >&2
                          cat "$TMP/serve.log" >&2; exit 1; }
"$BUILD/src/cli/spectra" loadgen --port="$SERVE_PORT" --clients=64 --ops=32 \
    --json="$TMP/loadgen.json" > "$TMP/loadgen.txt"
cat "$TMP/loadgen.txt"
"$BUILD/src/cli/spectra" loadgen --port="$SERVE_PORT" --clients=8 --ops=8 \
    --seed=17 --chaos=1.0 --json="$TMP/loadgen_chaos.json" \
    > "$TMP/loadgen_chaos.txt"
cat "$TMP/loadgen_chaos.txt"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || true
python3 - "$TMP/loadgen.json" "$TMP/loadgen_chaos.json" \
          "$TMP/serve_stats.json" "$SERVE_OUT" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))
chaos = json.load(open(sys.argv[2]))
daemon = json.load(open(sys.argv[3]))
floor = json.load(open('scripts/perf_baseline.json'))['serve_floor']
cur['harness'] = 'scripts/bench.sh'
cur['floor_requests_per_sec'] = floor['requests_per_sec']
cur['chaos'] = {k: chaos[k] for k in
                ('clients', 'ops_per_client', 'ops', 'errors', 'wall_s',
                 'requests_per_sec', 'p50_ms', 'p99_ms', 'chaos_intensity',
                 'faults_injected', 'reconnects', 'resumes', 'reissues',
                 'retries')}
cur['daemon'] = daemon
json.dump(cur, open(sys.argv[4], 'w'), indent=2)
print('wrote', sys.argv[4], '--',
      f"{cur['requests_per_sec']:.0f} req/s clean (p99 {cur['p99_ms']:.2f} ms), "
      f"{chaos['requests_per_sec']:.0f} req/s under chaos "
      f"({chaos['faults_injected']} faults, {chaos['reconnects']} reconnects, "
      f"{chaos['resumes']} resumes; daemon sheds={daemon['sheds']}, "
      f"timeouts={daemon['idle_timeouts'] + daemon['frame_timeouts']})")
PYEOF
