#!/usr/bin/env bash
# CI check: tier-1 verify (full build + ctest, see ROADMAP.md) followed by
# an ASan smoke pass — a sanitized build of the observability suite plus a
# `spectra scenarios` smoke run, catching memory bugs in the trace/metrics
# hot paths that the plain build would miss — and a TSan smoke of the batch
# runner: the exec suite (thread pool, concurrent logging, metrics merge,
# batch determinism), the island-executor suite, and multi-worker CLI runs
# including a multi-island fleet (3 islands on 4 workers), catching data
# races in the parallel fan-out and the island barrier protocol that
# neither the plain nor the ASan build can see.
# A serve-chaos stage then gates the daemon's survivability: a wire-chaos
# soak with self-healing clients (every shed/timeout/drop must reconcile
# between stats JSON and trace lines), and a kill -9 → --resume crash
# recovery whose combined record must be byte-identical to an
# uninterrupted run. A UBSan smoke then drives the fault paths (chaos +
# journal suites and a small CLI soak), and a ~25-plan chaos soak across
# all three applications follows. Perf smokes gate the decision hot path
# and fleet throughput against scripts/perf_baseline.json floors, and a
# memory smoke gates the 100k-client world's peak RSS against the
# fleet_mem_ceiling bytes-per-client ceiling.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: configure + build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== serve smoke =="
# A real daemon on loopback: 64 concurrent loadgen sessions, a recorded
# trace replayed byte-identically both over the wire and in-process, a
# clean SIGINT shutdown (sinks flushed, exit 130), and a throughput gate
# against serve_floor in scripts/perf_baseline.json.
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
"$BUILD/src/cli/spectra" serve --port=0 --record="$SERVE_TMP/rec.jsonl" \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_TMP/serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/serve.log")
[ -n "$PORT" ] || { echo "serve daemon failed to start" >&2
                    cat "$SERVE_TMP/serve.log" >&2; exit 1; }
"$BUILD/src/cli/spectra" loadgen --port="$PORT" --clients=64 --ops=4 \
    --json="$SERVE_TMP/loadgen.json" >/dev/null
cp "$SERVE_TMP/rec.jsonl" "$SERVE_TMP/rec_snapshot.jsonl"
"$BUILD/src/cli/spectra" replay "$SERVE_TMP/rec_snapshot.jsonl" --port="$PORT" >/dev/null
kill -INT "$SERVE_PID"
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 130 ] || { echo "serve daemon exit $SERVE_RC != 130 on SIGINT" >&2
                             cat "$SERVE_TMP/serve.log" >&2; exit 1; }
grep -q "shut down (signal)" "$SERVE_TMP/serve.log" || {
  echo "serve daemon did not report signal shutdown" >&2; exit 1; }
"$BUILD/src/cli/spectra" replay "$SERVE_TMP/rec_snapshot.jsonl" >/dev/null
python3 - "$SERVE_TMP/loadgen.json" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))
floor = json.load(open('scripts/perf_baseline.json'))['serve_floor']
got = cur['requests_per_sec']
limit = floor['requests_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
print(f"  serve_64: {got:.0f} requests/s (floor*0.9 = {limit:.0f}) {status}")
sys.exit(0 if got >= limit else 1)
PYEOF

echo "== serve chaos + crash recovery =="
# Survivability gates for the daemon. First a chaos soak: self-healing
# loadgen clients mangle their own frames (delays, splits, slowloris
# stalls, corrupt headers, RST aborts) against a daemon with deadlines
# armed — every op must complete exactly once, the daemon must exit
# cleanly on SIGINT, and every shed/timeout/close/drop it performed must
# be accounted in both its stats JSON and the lifecycle trace lines.
"$BUILD/src/cli/spectra" serve --port=0 --record="$SERVE_TMP/chaos_wal.jsonl" \
    --idle-timeout=1.5 --frame-timeout=1.0 \
    --stats-json="$SERVE_TMP/chaos_stats.json" \
    > "$SERVE_TMP/chaos_serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_TMP/chaos_serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/chaos_serve.log")
[ -n "$PORT" ] || { echo "chaos serve daemon failed to start" >&2
                    cat "$SERVE_TMP/chaos_serve.log" >&2; exit 1; }
"$BUILD/src/cli/spectra" loadgen --port="$PORT" --clients=6 --ops=8 \
    --seed=31 --chaos=1.5 --json="$SERVE_TMP/chaos_loadgen.json" \
    > "$SERVE_TMP/chaos_loadgen.txt" \
  || { echo "chaos loadgen failed:" >&2
       cat "$SERVE_TMP/chaos_loadgen.txt" >&2; exit 1; }
# Provoke one frame timeout the soak may not have: a slowloris that sends
# three header bytes and stalls past --frame-timeout.
python3 - "$PORT" <<'PYEOF'
import socket, sys, time
s = socket.create_connection(('127.0.0.1', int(sys.argv[1])))
s.sendall(b'\x10\x00\x00')  # 3 of 5 header bytes, then silence
deadline = time.time() + 10
s.settimeout(10)
while time.time() < deadline:
    if s.recv(4096) == b'':  # daemon cut us loose
        sys.exit(0)
print('slowloris connection was never closed', file=sys.stderr)
sys.exit(1)
PYEOF
kill -INT "$SERVE_PID"
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 130 ] || { echo "chaos daemon exit $SERVE_RC != 130 on SIGINT" >&2
                             cat "$SERVE_TMP/chaos_serve.log" >&2; exit 1; }
python3 - "$SERVE_TMP/chaos_stats.json" "$SERVE_TMP/chaos_wal.jsonl" \
          "$SERVE_TMP/chaos_loadgen.json" <<'PYEOF'
import json, sys
stats = json.load(open(sys.argv[1]))
events = {}
drop_frames = 0
slow_closes = 0
for line in open(sys.argv[2]):
    rec = json.loads(line)
    t = rec.get('type', '')
    if not t.startswith('serve.'):
        continue
    events[t] = events.get(t, 0) + 1
    if t == 'serve.drop':
        drop_frames += rec['frames']
    if t == 'serve.close' and rec.get('reason') == 'slow_consumer':
        slow_closes += 1
checks = [
    ('sheds', stats['sheds'], events.get('serve.shed', 0)),
    ('timeouts', stats['idle_timeouts'] + stats['frame_timeouts'],
     events.get('serve.timeout', 0)),
    ('dropped_frames', stats['dropped_frames'], drop_frames),
    ('slow_consumer_closes', stats['slow_consumer_closes'], slow_closes),
]
failed = False
for name, in_stats, in_trace in checks:
    ok = in_stats == in_trace
    failed |= not ok
    print(f"  {name}: stats={in_stats} trace={in_trace} "
          f"{'ok' if ok else 'MISMATCH'}")
assert stats['frame_timeouts'] >= 1, 'slowloris was not timed out'
lg = json.load(open(sys.argv[3]))
assert lg['errors'] == 0, f"chaos loadgen saw {lg['errors']} client errors"
assert lg['ops'] == 48, f"chaos loadgen completed {lg['ops']} of 48 ops"
assert lg['faults_injected'] > 0, 'chaos injected no faults'
print(f"  chaos soak: {lg['ops']} ops, {lg['faults_injected']} faults, "
      f"{lg['reconnects']} reconnects, {lg['resumes']} resumes")
sys.exit(1 if failed else 0)
PYEOF

# Then the crash-recovery gate: kill -9 a recording daemon mid-loadgen,
# restart it on the same port with --resume pointing at its own record
# (the write-ahead log), and require (a) the surviving resilient client
# finishes every op, (b) the combined pre+post-crash record replays
# byte-identically in-process, and (c) it is byte-identical (in canonical
# form, lifecycle lines excluded) to a run that never crashed.
WAL="$SERVE_TMP/kill_wal.jsonl"
REF="$SERVE_TMP/kill_ref.jsonl"
"$BUILD/src/cli/spectra" serve --port=0 --record="$WAL" \
    > "$SERVE_TMP/kill_serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_TMP/kill_serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/kill_serve.log")
[ -n "$PORT" ] || { echo "kill-test daemon failed to start" >&2; exit 1; }
# Chaos slows the client enough that the kill lands mid-run; corruption
# is header-only by design, so the WAL bytes stay clean.
"$BUILD/src/cli/spectra" loadgen --port="$PORT" --clients=1 --ops=40 \
    --seed=77 --chaos=1.0 --json="$SERVE_TMP/kill_loadgen.json" \
    > "$SERVE_TMP/kill_loadgen.txt" 2>&1 &
LOADGEN_PID=$!
sleep 1
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
"$BUILD/src/cli/spectra" serve --port="$PORT" --record="$WAL" --resume="$WAL" \
    > "$SERVE_TMP/kill_serve2.log" 2>&1 &
SERVE_PID=$!
LOADGEN_RC=0; wait "$LOADGEN_PID" || LOADGEN_RC=$?
[ "$LOADGEN_RC" -eq 0 ] || { echo "loadgen did not survive the kill/restart:" >&2
                             cat "$SERVE_TMP/kill_loadgen.txt" >&2
                             cat "$SERVE_TMP/kill_serve2.log" >&2; exit 1; }
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || true
# The client must actually have seen the crash (reconnected at least
# once), or the kill landed after the run finished and proved nothing.
python3 - "$SERVE_TMP/kill_loadgen.json" <<'PYEOF'
import json, sys
lg = json.load(open(sys.argv[1]))
assert lg['reconnects'] >= 1, \
    'kill -9 landed outside the run: client never reconnected'
assert lg['resumes'] >= 1, 'client reconnected without resuming its session'
PYEOF
# Reference run: same seed, same ops, no crash.
"$BUILD/src/cli/spectra" serve --port=0 --record="$REF" \
    > "$SERVE_TMP/kill_ref.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_TMP/kill_ref.log" 2>/dev/null && break
  sleep 0.1
done
REF_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/kill_ref.log")
"$BUILD/src/cli/spectra" loadgen --port="$REF_PORT" --clients=1 --ops=40 \
    --seed=77 >/dev/null
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || true
"$BUILD/src/cli/spectra" replay "$WAL" >/dev/null || {
  echo "combined crash+resume record does not replay identically" >&2; exit 1; }
python3 - "$WAL" "$REF" <<'PYEOF'
import json, sys
# Only lifecycle lines (shed/timeout/close/drop/resume/recovered) may
# differ between the crash run and the reference; the op record
# (serve.session/serve.begin/serve.end) must match byte for byte.
LIFECYCLE = {'serve.shed', 'serve.timeout', 'serve.close', 'serve.drop',
             'serve.resume', 'serve.recovered'}
def canonical(path):
    return [l for l in open(path)
            if json.loads(l).get('type', '') not in LIFECYCLE]
wal, ref = canonical(sys.argv[1]), canonical(sys.argv[2])
assert wal, 'crash+resume record has no op lines — gate would be vacuous'
if wal != ref:
    print('crash+resume record diverged from the uninterrupted run',
          file=sys.stderr)
    for a, b in zip(wal, ref):
        if a != b:
            print(f'  crash run: {a!r}\n  reference: {b!r}', file=sys.stderr)
            break
    print(f'  ({len(wal)} vs {len(ref)} canonical lines)', file=sys.stderr)
    sys.exit(1)
print(f"  kill -9 + --resume: {len(wal)} canonical lines, byte-identical "
      f"to the uninterrupted run")
PYEOF

echo "== sanitize smoke (address) =="
# obs_test covers the trace/metrics hot paths; fleet_test drives the
# admission queue, load board, and the parallel fleet tick pipeline (its
# determinism suites run --jobs=8 worlds) under ASan.
SMOKE="$BUILD-asan"
cmake -B "$SMOKE" -S . -DSPECTRA_SANITIZE=address >/dev/null
cmake --build "$SMOKE" -j "$(nproc)" --target obs_test fleet_test spectra
"$SMOKE/tests/obs_test"
"$SMOKE/tests/fleet_test"
"$SMOKE/src/cli/spectra" scenarios >/dev/null
# 10k-client multi-island fleet under ASan: the SoA client store, the
# per-island tick arenas, and the admission cookie/metadata slot reuse at
# scale — exactly the structures the memory diet rebuilt.
"$SMOKE/src/cli/spectra" fleet --clients=10000 --servers=80 --islands=8 \
    --horizon=30 --jobs=4 >/dev/null

echo "== sanitize smoke (thread) =="
TSMOKE="$BUILD-tsan"
cmake -B "$TSMOKE" -S . -DSPECTRA_SANITIZE=thread >/dev/null
cmake --build "$TSMOKE" -j "$(nproc)" --target exec_test island_test spectra
"$TSMOKE/tests/exec_test"
"$TSMOKE/tests/island_test"
SPECTRA_TRIALS=2 "$TSMOKE/src/cli/spectra" speech --trials=2 --jobs=4 >/dev/null
# Island-parallel fleet under TSan: a multi-island world (600 clients, 3
# islands) advancing on 4 workers. Any cross-island write that escapes the
# barrier protocol is a data race here, not just a determinism bug.
"$TSMOKE/src/cli/spectra" fleet --clients=600 --servers=6 --islands=3 \
    --horizon=30 --jobs=4 >/dev/null
# And at 10k clients on 8 islands: pool-granular latency buffers and arena
# resets cross worker threads here, so a misattributed write is a reported
# race, not a silent fingerprint flake.
"$TSMOKE/src/cli/spectra" fleet --clients=10000 --servers=80 --islands=8 \
    --horizon=15 --jobs=4 >/dev/null

echo "== sanitize smoke (undefined) =="
# UB in the failure paths (journal replay, breaker arithmetic, fingerprint
# hashing) only executes under faults, so the UBSan build drives the chaos
# suite plus a small soak through the CLI.
USMOKE="$BUILD-ubsan"
cmake -B "$USMOKE" -S . -DSPECTRA_SANITIZE=undefined >/dev/null
cmake --build "$USMOKE" -j "$(nproc)" --target chaos_test journal_test spectra
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
"$USMOKE/tests/chaos_test"
"$USMOKE/tests/journal_test"
"$USMOKE/src/cli/spectra" chaos --app=latex --plans=3 --ops=2 --jobs=2 >/dev/null
unset UBSAN_OPTIONS

echo "== chaos soak =="
# ~25 seeded plans spread over all three applications; fails on any
# invariant violation or replay divergence.
"$BUILD/src/cli/spectra" chaos --app=all --plans=9 --jobs="$(nproc)" >/dev/null

echo "== perf smoke: decision hot path =="
# Decision-overhead regression gate (the paper's fig10 measurement): the
# micro_decision bench must not fall more than 10% below the throughput
# floors recorded in scripts/perf_baseline.json. Floors are conservative
# (minimum observed across runs), so a trip means a real hot-path
# regression, not scheduler noise.
"$BUILD/bench/micro_decision" --json="$BUILD/decision_smoke.json" >/dev/null
python3 - "$BUILD/decision_smoke.json" <<'PYEOF'
import json, sys
cur = {s['name']: s for s in json.load(open(sys.argv[1]))['scenarios']}
base = json.load(open('scripts/perf_baseline.json'))
failed = False
for floor in base['floor_scenarios']:
    name = floor['name']
    got = cur[name]['decisions_per_sec']
    limit = floor['decisions_per_sec'] * 0.9
    status = 'ok' if got >= limit else 'REGRESSION'
    if got < limit:
        failed = True
    print(f"  {name}: {got:.0f} decisions/s (floor*0.9 = {limit:.0f}) {status}")
sys.exit(1 if failed else 0)
PYEOF

echo "== perf smoke: fleet decisions =="
# Whole-fleet throughput gate: the 1000-client fleet world must not fall
# more than 10% below the (deliberately loose) fleet_floor in
# scripts/perf_baseline.json.
"$BUILD/bench/fleet_scale" --clients=1000 --jobs=1 \
    --json="$BUILD/fleet_smoke.json" >/dev/null
python3 - "$BUILD/fleet_smoke.json" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))['scales'][0]
base = json.load(open('scripts/perf_baseline.json'))
failed = False

floor = base['fleet_floor']
got = cur['wall']['decisions_per_sec']
limit = floor['decisions_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
failed |= got < limit
print(f"  fleet_1000: {got:.0f} decisions/s (floor*0.9 = {limit:.0f}) {status}")

# Island pipeline gate: the same 1000-client run auto-shards into islands;
# events/sec (decisions + completions per wall second) must hold the
# island_floor even at --jobs=1, so barrier/mail overhead cannot creep in
# unnoticed on hosts where parallel speedup is unmeasurable.
ifloor = base['island_floor']
assert cur['islands'] == ifloor['islands'], \
    f"shard planner changed: {cur['islands']} islands vs {ifloor['islands']}"
got = cur['wall']['events_per_sec']
limit = ifloor['events_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
failed |= got < limit
print(f"  fleet_1000 islands={cur['islands']}: {got:.0f} events/s "
      f"(floor*0.9 = {limit:.0f}) {status}")
sys.exit(1 if failed else 0)
PYEOF

echo "== mem smoke: fleet at 100k clients =="
# Memory ceiling gate: the 100k-client world must stay under the
# bytes-per-client ceiling in scripts/perf_baseline.json (fleet_mem_ceiling).
# The pre-diet seed sat at ~8.3 KB/client; the diet landed ~1.6 KB/client;
# the ceiling splits the difference so scattered per-client heap state
# cannot creep back in without tripping here.
"$BUILD/bench/fleet_scale" --clients=100000 --jobs="$(nproc)" \
    --json="$BUILD/fleet_mem_smoke.json" >/dev/null
python3 - "$BUILD/fleet_mem_smoke.json" <<'PYEOF'
import json, sys
mem = json.load(open(sys.argv[1]))['mem']
gate = json.load(open('scripts/perf_baseline.json'))['fleet_mem_ceiling']
assert mem['max_clients'] == gate['clients'], \
    f"mem smoke ran {mem['max_clients']} clients, gate expects {gate['clients']}"
got = mem['bytes_per_client']
limit = gate['bytes_per_client_ceiling']
status = 'ok' if got <= limit else 'REGRESSION'
print(f"  fleet_100k: {got} bytes/client peak RSS "
      f"(ceiling {limit}) {status}")
sys.exit(0 if got <= limit else 1)
PYEOF

echo "OK"
