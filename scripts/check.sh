#!/usr/bin/env bash
# CI check: tier-1 verify (full build + ctest, see ROADMAP.md) followed by
# an ASan smoke pass — a sanitized build of the observability suite plus a
# `spectra scenarios` smoke run, catching memory bugs in the trace/metrics
# hot paths that the plain build would miss — and a TSan smoke of the batch
# runner: the exec suite (thread pool, concurrent logging, metrics merge,
# batch determinism) plus a multi-worker CLI run, catching data races in
# the parallel fan-out that neither the plain nor the ASan build can see.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: configure + build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== sanitize smoke (address) =="
SMOKE="$BUILD-asan"
cmake -B "$SMOKE" -S . -DSPECTRA_SANITIZE=address >/dev/null
cmake --build "$SMOKE" -j "$(nproc)" --target obs_test spectra
"$SMOKE/tests/obs_test"
"$SMOKE/src/cli/spectra" scenarios >/dev/null

echo "== sanitize smoke (thread) =="
TSMOKE="$BUILD-tsan"
cmake -B "$TSMOKE" -S . -DSPECTRA_SANITIZE=thread >/dev/null
cmake --build "$TSMOKE" -j "$(nproc)" --target exec_test spectra
"$TSMOKE/tests/exec_test"
SPECTRA_TRIALS=2 "$TSMOKE/src/cli/spectra" speech --trials=2 --jobs=4 >/dev/null

echo "OK"
