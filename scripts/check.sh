#!/usr/bin/env bash
# CI check: tier-1 verify (full build + ctest, see ROADMAP.md) followed by
# an ASan smoke pass — a sanitized build of the observability suite plus a
# `spectra scenarios` smoke run, catching memory bugs in the trace/metrics
# hot paths that the plain build would miss — and a TSan smoke of the batch
# runner: the exec suite (thread pool, concurrent logging, metrics merge,
# batch determinism), the island-executor suite, and multi-worker CLI runs
# including a multi-island fleet (3 islands on 4 workers), catching data
# races in the parallel fan-out and the island barrier protocol that
# neither the plain nor the ASan build can see.
# A UBSan smoke then drives the fault paths (chaos + journal suites and a
# small CLI soak), and a ~25-plan chaos soak across all three applications
# closes the run.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: configure + build =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== serve smoke =="
# A real daemon on loopback: 64 concurrent loadgen sessions, a recorded
# trace replayed byte-identically both over the wire and in-process, a
# clean SIGINT shutdown (sinks flushed, exit 130), and a throughput gate
# against serve_floor in scripts/perf_baseline.json.
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
"$BUILD/src/cli/spectra" serve --port=0 --record="$SERVE_TMP/rec.jsonl" \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_TMP/serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_TMP/serve.log")
[ -n "$PORT" ] || { echo "serve daemon failed to start" >&2
                    cat "$SERVE_TMP/serve.log" >&2; exit 1; }
"$BUILD/src/cli/spectra" loadgen --port="$PORT" --clients=64 --ops=4 \
    --json="$SERVE_TMP/loadgen.json" >/dev/null
cp "$SERVE_TMP/rec.jsonl" "$SERVE_TMP/rec_snapshot.jsonl"
"$BUILD/src/cli/spectra" replay "$SERVE_TMP/rec_snapshot.jsonl" --port="$PORT" >/dev/null
kill -INT "$SERVE_PID"
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 130 ] || { echo "serve daemon exit $SERVE_RC != 130 on SIGINT" >&2
                             cat "$SERVE_TMP/serve.log" >&2; exit 1; }
grep -q "shut down (signal)" "$SERVE_TMP/serve.log" || {
  echo "serve daemon did not report signal shutdown" >&2; exit 1; }
"$BUILD/src/cli/spectra" replay "$SERVE_TMP/rec_snapshot.jsonl" >/dev/null
python3 - "$SERVE_TMP/loadgen.json" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))
floor = json.load(open('scripts/perf_baseline.json'))['serve_floor']
got = cur['requests_per_sec']
limit = floor['requests_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
print(f"  serve_64: {got:.0f} requests/s (floor*0.9 = {limit:.0f}) {status}")
sys.exit(0 if got >= limit else 1)
PYEOF

echo "== sanitize smoke (address) =="
# obs_test covers the trace/metrics hot paths; fleet_test drives the
# admission queue, load board, and the parallel fleet tick pipeline (its
# determinism suites run --jobs=8 worlds) under ASan.
SMOKE="$BUILD-asan"
cmake -B "$SMOKE" -S . -DSPECTRA_SANITIZE=address >/dev/null
cmake --build "$SMOKE" -j "$(nproc)" --target obs_test fleet_test spectra
"$SMOKE/tests/obs_test"
"$SMOKE/tests/fleet_test"
"$SMOKE/src/cli/spectra" scenarios >/dev/null

echo "== sanitize smoke (thread) =="
TSMOKE="$BUILD-tsan"
cmake -B "$TSMOKE" -S . -DSPECTRA_SANITIZE=thread >/dev/null
cmake --build "$TSMOKE" -j "$(nproc)" --target exec_test island_test spectra
"$TSMOKE/tests/exec_test"
"$TSMOKE/tests/island_test"
SPECTRA_TRIALS=2 "$TSMOKE/src/cli/spectra" speech --trials=2 --jobs=4 >/dev/null
# Island-parallel fleet under TSan: a multi-island world (600 clients, 3
# islands) advancing on 4 workers. Any cross-island write that escapes the
# barrier protocol is a data race here, not just a determinism bug.
"$TSMOKE/src/cli/spectra" fleet --clients=600 --servers=6 --islands=3 \
    --horizon=30 --jobs=4 >/dev/null

echo "== sanitize smoke (undefined) =="
# UB in the failure paths (journal replay, breaker arithmetic, fingerprint
# hashing) only executes under faults, so the UBSan build drives the chaos
# suite plus a small soak through the CLI.
USMOKE="$BUILD-ubsan"
cmake -B "$USMOKE" -S . -DSPECTRA_SANITIZE=undefined >/dev/null
cmake --build "$USMOKE" -j "$(nproc)" --target chaos_test journal_test spectra
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
"$USMOKE/tests/chaos_test"
"$USMOKE/tests/journal_test"
"$USMOKE/src/cli/spectra" chaos --app=latex --plans=3 --ops=2 --jobs=2 >/dev/null
unset UBSAN_OPTIONS

echo "== chaos soak =="
# ~25 seeded plans spread over all three applications; fails on any
# invariant violation or replay divergence.
"$BUILD/src/cli/spectra" chaos --app=all --plans=9 --jobs="$(nproc)" >/dev/null

echo "== perf smoke: decision hot path =="
# Decision-overhead regression gate (the paper's fig10 measurement): the
# micro_decision bench must not fall more than 10% below the throughput
# floors recorded in scripts/perf_baseline.json. Floors are conservative
# (minimum observed across runs), so a trip means a real hot-path
# regression, not scheduler noise.
"$BUILD/bench/micro_decision" --json="$BUILD/decision_smoke.json" >/dev/null
python3 - "$BUILD/decision_smoke.json" <<'PYEOF'
import json, sys
cur = {s['name']: s for s in json.load(open(sys.argv[1]))['scenarios']}
base = json.load(open('scripts/perf_baseline.json'))
failed = False
for floor in base['floor_scenarios']:
    name = floor['name']
    got = cur[name]['decisions_per_sec']
    limit = floor['decisions_per_sec'] * 0.9
    status = 'ok' if got >= limit else 'REGRESSION'
    if got < limit:
        failed = True
    print(f"  {name}: {got:.0f} decisions/s (floor*0.9 = {limit:.0f}) {status}")
sys.exit(1 if failed else 0)
PYEOF

echo "== perf smoke: fleet decisions =="
# Whole-fleet throughput gate: the 1000-client fleet world must not fall
# more than 10% below the (deliberately loose) fleet_floor in
# scripts/perf_baseline.json.
"$BUILD/bench/fleet_scale" --clients=1000 --jobs=1 \
    --json="$BUILD/fleet_smoke.json" >/dev/null
python3 - "$BUILD/fleet_smoke.json" <<'PYEOF'
import json, sys
cur = json.load(open(sys.argv[1]))['scales'][0]
base = json.load(open('scripts/perf_baseline.json'))
failed = False

floor = base['fleet_floor']
got = cur['wall']['decisions_per_sec']
limit = floor['decisions_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
failed |= got < limit
print(f"  fleet_1000: {got:.0f} decisions/s (floor*0.9 = {limit:.0f}) {status}")

# Island pipeline gate: the same 1000-client run auto-shards into islands;
# events/sec (decisions + completions per wall second) must hold the
# island_floor even at --jobs=1, so barrier/mail overhead cannot creep in
# unnoticed on hosts where parallel speedup is unmeasurable.
ifloor = base['island_floor']
assert cur['islands'] == ifloor['islands'], \
    f"shard planner changed: {cur['islands']} islands vs {ifloor['islands']}"
got = cur['wall']['events_per_sec']
limit = ifloor['events_per_sec'] * 0.9
status = 'ok' if got >= limit else 'REGRESSION'
failed |= got < limit
print(f"  fleet_1000 islands={cur['islands']}: {got:.0f} events/s "
      f"(floor*0.9 = {limit:.0f}) {status}")
sys.exit(1 if failed else 0)
PYEOF

echo "OK"
