// Roaming through pervasive-computing environments.
//
// The paper's vision (§1): "Some well-conditioned environments may provide
// plentiful wireless bandwidth and powerful compute servers. Other
// locations may be resource-impoverished." This example keeps ONE running
// Spectra client and walks it through a day of changing conditions,
// printing how the same recognition request lands in different places —
// including goal-directed energy adaptation raising the importance of
// conservation (c) as the battery outlook worsens.
//
// Build & run:  ./build/examples/roaming
#include <iostream>

#include "monitor/battery_monitor.h"
#include "scenario/experiment.h"
#include "util/table.h"

using namespace spectra;           // NOLINT: example brevity
using namespace spectra::scenario; // NOLINT

namespace {

void recognize(World& world, double seconds) {
  auto& spectra = world.spectra();
  const auto choice = spectra.begin_fidelity_op(
      apps::JanusApp::kOperation, {{"utt_len", seconds}});
  world.janus().execute(spectra, seconds);
  const auto usage = spectra.end_fidelity_op();
  static const char* kPlans[] = {"local", "hybrid", "remote"};
  std::cout << "    recognize(" << seconds
            << "s): " << kPlans[choice.alternative.plan] << "/"
            << (choice.alternative.fidelity.at("vocab") >= 1.0 ? "full"
                                                               : "reduced")
            << "  time=" << util::Table::num(usage.elapsed, 2)
            << "s  energy=" << util::Table::num(usage.energy, 2)
            << "J  c=" << util::Table::num(
                   world.spectra().energy_importance(), 2)
            << "\n";
}

}  // namespace

int main() {
  std::cout << "A day of roaming with one self-tuning Spectra client.\n\n";

  SpeechExperiment::Config cfg;
  cfg.seed = 21;
  auto world = SpeechExperiment(cfg).trained_world();
  auto& w = *world;

  std::cout << "09:00 — docked at the desk (wall power, clean link):\n";
  recognize(w, 2.0);
  recognize(w, 2.0);

  std::cout << "\n11:00 — unplugged; goal: survive until tomorrow morning "
               "(goal-directed adaptation active):\n";
  w.client_machine().set_on_battery(true);
  w.spectra().set_battery_lifetime_goal(20.0 * 3600);
  w.settle(60.0);  // adaptation ticks observe the demand rate
  recognize(w, 2.0);
  std::cout << "    ... heavy use drains the battery; c keeps rising ...\n";
  // Burn through the battery with sustained recognition.
  for (int i = 0; i < 12; ++i) {
    w.spectra().begin_fidelity_op(apps::JanusApp::kOperation,
                                  {{"utt_len", 2.0}});
    w.janus().execute(w.spectra(), 2.0);
    w.spectra().end_fidelity_op();
    w.settle(5.0);
  }
  recognize(w, 2.0);

  std::cout << "\n14:00 — lecture hall: serial link saturated by others "
               "(bandwidth halved):\n";
  w.network().set_link_bandwidth(kClient, kServerT20, 5750.0);
  w.settle(15.0);
  recognize(w, 2.0);

  std::cout << "\n16:00 — walking between buildings: compute server out of "
               "range entirely:\n";
  w.network().set_link_up(kClient, kServerT20, false);
  w.spectra().server_db().poll_all();
  w.settle(10.0);
  recognize(w, 2.0);

  std::cout << "\n17:00 — back in coverage, plugged in:\n";
  w.network().set_link_up(kClient, kServerT20, true);
  w.network().set_link_bandwidth(kClient, kServerT20, 11500.0);
  w.client_machine().set_on_battery(false);
  w.settle(15.0);
  recognize(w, 2.0);

  std::cout << "\nSame application, same API calls — placement and fidelity "
               "followed the environment.\n";
  return 0;
}
