// Dynamic service discovery (extension of §3.2).
//
// The paper configures candidate servers statically and leaves discovery as
// future work. This example shows the implemented extension: a client walks
// into a room knowing no servers at all, hears announcements, adds the
// servers to its database, and starts offloading — then the server
// disappears (partition) and the client gracefully returns to local
// execution.
//
// Build & run:  ./build/examples/discovery
#include <iostream>

#include "core/discovery.h"
#include "scenario/world.h"
#include "util/table.h"

using namespace spectra;           // NOLINT: example brevity
using namespace spectra::scenario; // NOLINT

namespace {

constexpr hw::MachineId kRoomServer = 30;

void crunch(World& w) {
  const auto choice = w.spectra().begin_fidelity_op("filter", {});
  rpc::Request req;
  req.op_type = "filter";
  req.payload = 16e3;
  const auto resp = choice.alternative.server >= 0
                        ? w.spectra().do_remote_op("filter", req)
                        : w.spectra().do_local_op("filter", req);
  const auto usage = w.spectra().end_fidelity_op();
  std::cout << "  filter -> "
            << (choice.alternative.server >= 0 ? "offloaded to room server"
                                               : "ran locally")
            << " in " << util::Table::num(usage.elapsed, 2) << " s"
            << (resp.ok ? "" : " [call FAILED, will relearn]") << "\n";
}

}  // namespace

int main() {
  std::cout << "Service discovery: a client that knows no servers.\n\n";

  WorldConfig wc;
  wc.testbed = Testbed::kOverhead;
  wc.overhead_servers = 0;  // statically configured servers: none
  World w(wc);

  core::DiscoveryDomain domain(w.engine(), w.network(), /*period=*/5.0);
  domain.subscribe(kClient, w.spectra().server_db());

  // The room's compute server (not known to the client).
  hw::MachineSpec spec;
  spec.name = "room-server";
  spec.cpu_hz = 2000e6;
  spec.power = hw::PowerModel{20.0, 15.0, 2.0};
  hw::Machine machine(w.engine(), spec, util::Rng(4));
  w.network().add_machine(kRoomServer, &machine);
  w.network().set_link(kClient, kRoomServer, {1.0e6, 0.002});
  core::SpectraServer server(kRoomServer, w.engine(), machine, w.network(),
                             nullptr);
  auto install = [](core::SpectraServer& host) {
    host.register_service("filter", [&host](const rpc::Request&) {
      host.machine().run_cycles(400e6);
      rpc::Response r;
      r.ok = true;
      r.payload = 8e3;
      return r;
    });
  };
  install(server);
  install(w.spectra().local_server());

  core::OperationDesc op;
  op.name = "filter";
  op.plans = {{"local", false}, {"remote", true}};
  op.latency_fn = solver::inverse_latency();
  op.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  w.spectra().register_fidelity(op);

  std::cout << "Before discovery (no servers known):\n";
  crunch(w);

  std::cout << "\nThe room server starts announcing...\n";
  domain.announce(server);
  w.settle(6.0);
  std::cout << "  client now knows "
            << w.spectra().server_db().available_servers().size()
            << " server(s)\n";

  std::cout << "\nSpectra explores the newcomer, learns, and offloads:\n";
  for (int i = 0; i < 12; ++i) crunch(w);

  std::cout << "\nThe client walks out of range:\n";
  w.network().set_link_up(kClient, kRoomServer, false);
  w.spectra().server_db().poll_all();
  crunch(w);
  return 0;
}
