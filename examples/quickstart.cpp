// Quickstart: adding remote execution to an application with Spectra.
//
// This example builds a tiny world by hand — one battery-powered client, one
// compute server, one Coda file server — then walks the full Spectra API:
//
//   1. install a *service* (the code component that may run remotely),
//   2. register_fidelity: describe the operation (plans, fidelity, input
//      parameters, latency desirability),
//   3. run the operation a few times so the self-tuning demand models learn,
//   4. watch Spectra's begin_fidelity_op pick where to execute as the
//      environment changes.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/client.h"
#include "core/server.h"
#include "hw/machine.h"
#include "net/network.h"
#include "sim/engine.h"
#include "solver/utility.h"

using namespace spectra;  // NOLINT: example brevity

namespace {

constexpr hw::MachineId kClient = 0;
constexpr hw::MachineId kServer = 1;
constexpr hw::MachineId kFileServer = 9;

hw::MachineSpec client_spec() {
  hw::MachineSpec s;
  s.name = "handheld";
  s.cpu_hz = 200e6;  // a small mobile device
  s.power = hw::PowerModel{0.2, 1.5, 0.4};
  s.battery_capacity_j = 15000.0;
  return s;
}

hw::MachineSpec server_spec() {
  hw::MachineSpec s;
  s.name = "compute-server";
  s.cpu_hz = 1000e6;
  s.power = hw::PowerModel{20.0, 15.0, 2.0};
  return s;
}

hw::MachineSpec file_server_spec() {
  hw::MachineSpec s;
  s.name = "file-server";
  s.cpu_hz = 800e6;
  s.power = hw::PowerModel{30.0, 10.0, 2.0};
  return s;
}

}  // namespace

int main() {
  // ---- 0. The world: machines, network, file system ----------------------
  sim::Engine engine;
  util::Rng rng(42);
  hw::Machine client(engine, client_spec(), rng.fork());
  hw::Machine server(engine, server_spec(), rng.fork());
  hw::Machine file_host(engine, file_server_spec(), rng.fork());
  net::Network network(engine, rng.fork());
  network.add_machine(kClient, &client);
  network.add_machine(kServer, &server);
  network.add_machine(kFileServer, &file_host);
  network.set_link(kClient, kServer, {1.0e6, 0.005});  // ~8 Mb/s WLAN
  network.set_link(kClient, kFileServer, {60000.0, 0.01});
  network.set_link(kServer, kFileServer, {400000.0, 0.002});

  fs::FileServer files(kFileServer);
  fs::CodaClient client_coda(kClient, client, network, files);
  fs::CodaClient server_coda(kServer, server, network, files);

  // ---- 1. Spectra client + server, and the application service -----------
  core::SpectraClientConfig config;
  config.exploration_runs = 6;  // explore the space before trusting models
  core::SpectraClient spectra(
      kClient, engine, client, network, client_coda,
      std::make_unique<hw::SmartBatteryDriver>(engine, client.meter()),
      rng.fork(), config);
  core::SpectraServer remote(kServer, engine, server, network, &server_coda);
  spectra.add_server(remote);

  // The "application": a filter that costs 300 Mcycles per megapixel.
  auto install = [](core::SpectraServer& host) {
    host.register_service("render", [&host](const rpc::Request& req) {
      host.machine().run_cycles(300e6 * req.args.at("megapixels"));
      rpc::Response r;
      r.ok = true;
      r.payload = 50e3 * req.args.at("megapixels");  // rendered tile
      return r;
    });
  };
  install(remote);
  install(spectra.local_server());

  // ---- 2. register_fidelity ----------------------------------------------
  core::OperationDesc op;
  op.name = "render";
  op.plans = {{"local", /*uses_remote=*/false},
              {"remote", /*uses_remote=*/true}};
  op.input_params = {"megapixels"};
  op.latency_fn = solver::inverse_latency();
  op.fidelity_fn = [](const std::map<std::string, double>&) { return 1.0; };
  spectra.register_fidelity(op);

  // ---- 3 & 4. run operations; Spectra learns and adapts ------------------
  auto render_once = [&](double megapixels) {
    const auto choice =
        spectra.begin_fidelity_op("render", {{"megapixels", megapixels}});
    rpc::Request req;
    req.op_type = "render";
    req.payload = 200e3 * megapixels;  // raw image travels with the request
    req.args["megapixels"] = megapixels;
    const auto resp = choice.alternative.server >= 0
                          ? spectra.do_remote_op("render", req)
                          : spectra.do_local_op("render", req);
    const auto usage = spectra.end_fidelity_op();
    std::cout << "  rendered " << megapixels << " MP "
              << (choice.alternative.server >= 0 ? "remotely" : "locally")
              << (choice.from_model ? "" : " (exploring)") << " in "
              << usage.elapsed << " s, " << usage.energy << " J"
              << (resp.ok ? "" : "  [FAILED]") << "\n";
  };

  std::cout << "Training (Spectra explores both plans):\n";
  for (int i = 0; i < 8; ++i) render_once(1.0 + 0.25 * i);

  std::cout << "\nGood network — Spectra should offload:\n";
  for (int i = 0; i < 3; ++i) render_once(2.0);

  std::cout << "\nNetwork degrades to ~64 kb/s — Spectra should pull the "
               "work back:\n";
  network.set_link_bandwidth(kClient, kServer, 8000.0);
  engine.advance(15.0);  // monitors observe the change via polling traffic
  for (int i = 0; i < 3; ++i) render_once(2.0);

  std::cout << "\nNetwork restored, but the server is now busy:\n";
  network.set_link_bandwidth(kClient, kServer, 1.0e6);
  server.set_background_procs(7.0);
  engine.advance(15.0);
  for (int i = 0; i < 3; ++i) render_once(2.0);

  std::cout << "\nDone. Spectra made every placement decision from learned "
               "models and monitored resources.\n";
  return 0;
}
