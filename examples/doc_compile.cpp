// Document compilation with consistent remote execution.
//
// The paper's Latex workload: input files live in Coda, are edited on the
// laptop, and may be compiled locally or on one of two compute servers.
// This example shows the piece that makes remote execution *correct*, not
// just fast: before compiling remotely, Spectra predicts which files the
// run will read and reintegrates exactly the dirty volumes that matter —
// and skips reintegration when the predicted file set says the
// modification is irrelevant (the paper's large-document case).
//
// Build & run:  ./build/examples/doc_compile
#include <iostream>

#include "scenario/experiment.h"
#include "util/table.h"

using namespace spectra;           // NOLINT: example brevity
using namespace spectra::scenario; // NOLINT

namespace {

void compile(World& world, const std::string& doc) {
  auto& spectra = world.spectra();
  const auto choice =
      spectra.begin_fidelity_op(apps::LatexApp::kOperation, {}, doc);
  world.latex().execute(spectra, doc);
  const auto usage = spectra.end_fidelity_op();
  std::string where = "locally";
  if (choice.alternative.server == kServerA) where = "on server A (400 MHz)";
  if (choice.alternative.server == kServerB) where = "on server B (933 MHz)";
  std::cout << "  latex " << doc << " -> compiled " << where << " in "
            << util::Table::num(usage.elapsed, 2) << " s";
  if (choice.reintegration_time > 0.0) {
    std::cout << " (including " << util::Table::num(choice.reintegration_time, 2)
              << " s reintegrating modified inputs)";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Latex on a 233 MHz ThinkPad 560X with two compute servers "
               "on 2 Mb/s shared wireless.\n\n";

  LatexExperiment::Config cfg;
  cfg.seed = 11;
  auto world = LatexExperiment(cfg).trained_world();
  auto& coda = world->coda(kClient);

  std::cout << "All caches warm, nothing modified:\n";
  compile(*world, "small");
  compile(*world, "large");

  std::cout << "\nEdit the small document's 70 KB top-level file on the "
               "laptop:\n";
  coda.write("latex/small/main.tex");
  std::cout << "  dirty volumes: " << coda.dirty_volumes().size() << "\n";

  std::cout << "\nCompile the LARGE document — Spectra predicts it never "
               "reads the modified file,\nso no reintegration is forced:\n";
  compile(*world, "large");
  std::cout << "  small document's edit still buffered locally: "
            << (coda.is_dirty("latex/small/main.tex") ? "yes" : "no") << "\n";

  std::cout << "\nCompile the SMALL document — its input is dirty, so "
               "remote execution would first\nhave to reintegrate over the "
               "slow path to the file servers. Spectra weighs that:\n";
  compile(*world, "small");
  std::cout << "  edit now visible to the file servers: "
            << (coda.is_dirty("latex/small/main.tex") ? "no" : "yes") << "\n";

  return 0;
}
