// Natural-language translation with fidelity adaptation.
//
// Pangloss-Lite combines up to three translation engines (EBMT, glossary,
// dictionary) plus a language modeler, each placeable locally or on a
// remote server — the paper's ~100 combinations of location and fidelity.
// This example translates sentences of growing length and shows Spectra
// trading translation quality (which engines run) against the 0.5 s / 5 s
// latency window, then reacting when server B loses the 12 MB EBMT corpus.
//
// Build & run:  ./build/examples/translator
#include <iostream>

#include "scenario/experiment.h"
#include "util/table.h"

using namespace spectra;           // NOLINT: example brevity
using namespace spectra::scenario; // NOLINT

namespace {

void translate(World& world, int words) {
  auto& spectra = world.spectra();
  const auto choice = spectra.begin_fidelity_op(
      apps::PanglossApp::kOperation,
      {{"words", static_cast<double>(words)}});
  world.pangloss().execute(spectra, words);
  const auto usage = spectra.end_fidelity_op();
  const auto& f = choice.alternative.fidelity;
  const double fidelity = 0.5 * f.at("ebmt") + 0.3 * f.at("gloss") +
                          0.2 * f.at("dict");
  std::cout << "  " << words << "-word sentence -> "
            << PanglossExperiment::label(choice.alternative)
            << "  (fidelity " << fidelity << ", "
            << util::Table::num(usage.elapsed, 2) << " s)\n";
}

}  // namespace

int main() {
  std::cout << "Pangloss-Lite Spanish->English translation, 233 MHz client "
               "+ servers A (400 MHz) and B (933 MHz).\n"
            << "Engines: EBMT (fidelity 0.5), glossary (0.3), dictionary "
               "(0.2); deadline window 0.5-5 s.\n\n";

  PanglossExperiment::Config cfg;
  cfg.seed = 3;
  std::cout << "All data files cached everywhere:\n";
  {
    auto world = PanglossExperiment(cfg).trained_world();
    for (int words : {6, 12, 20, 32, 44}) translate(*world, words);
  }

  std::cout << "\nServer B loses the 12 MB EBMT corpus from its cache:\n";
  {
    PanglossExperiment::Config c = cfg;
    c.scenario = PanglossScenario::kFileCache;
    auto world = PanglossExperiment(c).trained_world();
    for (int words : {6, 12, 20, 32, 44}) translate(*world, words);
  }

  std::cout << "\nNote how short sentences keep every engine while long "
               "ones shed the costliest marginal\nengine, and how EBMT "
               "migrates away from server B once its corpus is gone.\n";
  return 0;
}
