// Speech assistant on a handheld: the paper's flagship workload.
//
// Runs the Janus speech recognizer on the simulated Itsy v2.2 + IBM T20
// testbed and narrates Spectra's placement/fidelity decisions as the user
// roams through the paper's five environments: well-conditioned, battery
// critical, congested network, busy handheld, and a network partition with
// a cold file cache.
//
// Build & run:  ./build/examples/speech_assistant
#include <iostream>

#include "scenario/experiment.h"
#include "util/table.h"
#include "scenario/scenarios.h"

using namespace spectra;           // NOLINT: example brevity
using namespace spectra::scenario; // NOLINT

namespace {

const char* plan_name(int plan) {
  static const char* kNames[] = {"local", "hybrid", "remote"};
  return kNames[plan];
}

void recognize(World& world, double seconds) {
  auto& spectra = world.spectra();
  const auto choice = spectra.begin_fidelity_op(
      apps::JanusApp::kOperation, {{"utt_len", seconds}});
  world.janus().execute(spectra, seconds);
  const auto usage = spectra.end_fidelity_op();
  std::cout << "  \"" << seconds << "s utterance\" -> "
            << plan_name(choice.alternative.plan) << " plan, "
            << (choice.alternative.fidelity.at("vocab") >= 1.0
                    ? "full"
                    : "reduced")
            << " vocabulary: " << util::Table::num(usage.elapsed, 2)
            << " s, " << util::Table::num(usage.energy, 2) << " J\n";
}

}  // namespace

int main() {
  std::cout << "Speech assistant on the Itsy v2.2 (206 MHz, software FP), "
               "IBM T20 compute server over a serial link.\n\n";

  SpeechExperiment::Config cfg;
  cfg.seed = 7;
  SpeechExperiment experiment(cfg);

  // One trained world per environment so each decision starts from the
  // same learned state (as in the paper's evaluation).
  struct Env {
    SpeechScenario scenario;
    const char* story;
  };
  const Env envs[] = {
      {SpeechScenario::kBaseline,
       "In the office: wall power, idle handheld, clean serial link."},
      {SpeechScenario::kEnergy,
       "On the road: battery powered, 10-hour lifetime goal."},
      {SpeechScenario::kNetwork,
       "Congested link: bandwidth to the server halved."},
      {SpeechScenario::kCpu,
       "Busy handheld: a CPU-bound job is running locally."},
      {SpeechScenario::kFileCache,
       "Partitioned: compute server unreachable, full-vocabulary language "
       "model not cached."},
  };

  for (const auto& env : envs) {
    std::cout << env.story << "\n";
    SpeechExperiment::Config c = cfg;
    c.scenario = env.scenario;
    auto world = SpeechExperiment(c).trained_world();
    for (double len : {1.5, 2.0, 3.0}) recognize(*world, len);
    std::cout << "\n";
  }

  std::cout << "Every decision above came from begin_fidelity_op: learned "
               "demand models matched\nagainst monitored CPU, network, "
               "battery, and file-cache availability.\n";
  return 0;
}
